//! Relevance metrics for the E5 scenario comparison.
//!
//! The ideal result for a GamerQueen customer query mixes the matching
//! inventory item (what the store actually sells — gain 2) with
//! editorial reviews of that item from the designated review sites
//! (gain 1). NDCG@k against that ideal quantifies the paper's central
//! claim: combining proprietary data with focused web results beats
//! either side alone.

use crate::model::ScenarioResult;
use crate::scenario::REVIEW_SITES;

/// Gain of one result for a target inventory title.
pub fn gain(result: &ScenarioResult, target_title: &str, inventory_host: &str) -> f64 {
    let title_match = result
        .title
        .to_lowercase()
        .contains(&target_title.to_lowercase());
    if result.url.contains(inventory_host) && title_match {
        return 2.0;
    }
    if title_match && REVIEW_SITES.iter().any(|s| result.url.contains(s)) {
        return 1.0;
    }
    0.0
}

/// Discounted cumulative gain at `k`.
pub fn dcg(gains: &[f64], k: usize) -> f64 {
    gains
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, g)| g / ((i + 2) as f64).log2())
        .sum()
}

/// NDCG@k of a result list for a target title.
///
/// The ideal list is one inventory hit (gain 2) followed by
/// `REVIEW_SITES.len()` reviews (gain 1 each).
pub fn ndcg_at_k(results: &[ScenarioResult], target_title: &str, k: usize) -> f64 {
    let inventory_host = "gamerqueen.example.com";
    let gains: Vec<f64> = results
        .iter()
        .map(|r| gain(r, target_title, inventory_host))
        .collect();
    let mut ideal = vec![2.0];
    ideal.extend(std::iter::repeat_n(1.0, REVIEW_SITES.len()));
    let idcg = dcg(&ideal, k);
    if idcg == 0.0 {
        0.0
    } else {
        (dcg(&gains, k) / idcg).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(title: &str, url: &str) -> ScenarioResult {
        ScenarioResult {
            title: title.into(),
            url: url.into(),
            origin: "x".into(),
        }
    }

    #[test]
    fn gains() {
        let host = "gamerqueen.example.com";
        assert_eq!(
            gain(
                &r("Galactic Raiders", "http://gamerqueen.example.com/games/gr"),
                "Galactic Raiders",
                host
            ),
            2.0
        );
        assert_eq!(
            gain(
                &r("Galactic Raiders review", "http://gamespot.com/review/gr"),
                "Galactic Raiders",
                host
            ),
            1.0
        );
        assert_eq!(
            gain(
                &r("Unrelated", "http://gamespot.com/other"),
                "Galactic Raiders",
                host
            ),
            0.0
        );
        // A review on a non-designated site gains nothing.
        assert_eq!(
            gain(
                &r(
                    "Galactic Raiders review",
                    "http://randomblog.example.com/gr"
                ),
                "Galactic Raiders",
                host
            ),
            0.0
        );
    }

    #[test]
    fn dcg_discounts_by_position() {
        assert!(dcg(&[2.0, 0.0], 2) > dcg(&[0.0, 2.0], 2));
        assert_eq!(dcg(&[], 5), 0.0);
    }

    #[test]
    fn perfect_list_scores_one() {
        let results = vec![
            r("Galactic Raiders", "http://gamerqueen.example.com/games/gr"),
            r("Galactic Raiders review", "http://gamespot.com/r"),
            r("Galactic Raiders review", "http://ign.com/r"),
            r("Galactic Raiders review", "http://teamxbox.com/r"),
        ];
        let score = ndcg_at_k(&results, "Galactic Raiders", 4);
        assert!((score - 1.0).abs() < 1e-9, "score = {score}");
    }

    #[test]
    fn empty_list_scores_zero() {
        assert_eq!(ndcg_at_k(&[], "Galactic Raiders", 10), 0.0);
    }

    #[test]
    fn reviews_only_beats_nothing_but_not_full_mix() {
        let reviews_only = vec![
            r("Galactic Raiders review", "http://gamespot.com/r"),
            r("Galactic Raiders review", "http://ign.com/r"),
        ];
        let mixed = vec![
            r("Galactic Raiders", "http://gamerqueen.example.com/games/gr"),
            r("Galactic Raiders review", "http://gamespot.com/r"),
        ];
        let a = ndcg_at_k(&reviews_only, "Galactic Raiders", 5);
        let b = ndcg_at_k(&mixed, "Galactic Raiders", 5);
        assert!(b > a && a > 0.0);
    }
}
