//! Table I regeneration: probe every system model and format the
//! comparison matrix.

use crate::model::SystemModel;

/// One probed row of the comparison table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparisonRow {
    /// System name.
    pub system: String,
    /// Search API column.
    pub search_api: String,
    /// Custom Sites column.
    pub custom_sites: String,
    /// Proprietary, Structured Data column.
    pub proprietary_data: String,
    /// Monetization column.
    pub monetization: String,
    /// Custom UI column.
    pub custom_ui: String,
    /// Deployment column.
    pub deployment: String,
}

/// Probe each model and collect rows (in input order).
pub fn build_matrix(models: &mut [Box<dyn SystemModel>]) -> Vec<ComparisonRow> {
    models
        .iter_mut()
        .map(|m| ComparisonRow {
            system: m.name().to_string(),
            search_api: m.search_api(),
            custom_sites: m.probe_custom_sites().cell(),
            proprietary_data: m.probe_proprietary_data().cell(),
            monetization: m.monetization(),
            custom_ui: m.probe_custom_ui().cell(),
            deployment: m.deployment(),
        })
        .collect()
}

/// Render rows as an aligned text table (systems as columns, like the
/// paper's Table I).
pub fn render_table(rows: &[ComparisonRow]) -> String {
    type Getter = fn(&ComparisonRow) -> &str;
    let axes: [(&str, Getter); 6] = [
        ("Search API", |r| &r.search_api),
        ("Custom Sites", |r| &r.custom_sites),
        ("Proprietary, Structured Data", |r| &r.proprietary_data),
        ("Monetization", |r| &r.monetization),
        ("Custom UI", |r| &r.custom_ui),
        ("Deployment", |r| &r.deployment),
    ];
    // Column widths.
    let mut widths: Vec<usize> = Vec::with_capacity(rows.len() + 1);
    widths.push(axes.iter().map(|(label, _)| label.len()).max().unwrap_or(0));
    for r in rows {
        let w = axes
            .iter()
            .map(|(_, get)| get(r).len())
            .chain([r.system.len()])
            .max()
            .unwrap_or(0);
        widths.push(w.min(44));
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    let row_line = |out: &mut String, cells: Vec<&str>| {
        for (cell, w) in cells.iter().zip(&widths) {
            out.push_str(&format!("| {:w$} ", cell, w = w));
        }
        out.push_str("|\n");
    };
    sep(&mut out);
    let mut header = vec![""];
    let names: Vec<&str> = rows.iter().map(|r| r.system.as_str()).collect();
    header.extend(names);
    row_line(&mut out, header);
    sep(&mut out);
    for (label, get) in axes {
        let mut cells = vec![label];
        let values: Vec<&str> = rows.iter().map(get).collect();
        cells.extend(values);
        row_line(&mut out, cells);
    }
    sep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{
        BossModel, EureksterModel, GoogleBaseModel, GoogleCustomModel, RollyoModel,
    };
    use crate::scenario::Scenario;
    use crate::symphony_model::SymphonyModel;

    #[test]
    fn matrix_matches_paper_shape() {
        let scenario = Scenario::small();
        let mut models: Vec<Box<dyn SystemModel>> = vec![
            Box::new(SymphonyModel::new(&scenario)),
            Box::new(BossModel::new(scenario.engine.clone())),
            Box::new(RollyoModel::new(scenario.engine.clone())),
            Box::new(EureksterModel::new(scenario.engine.clone())),
            Box::new(GoogleCustomModel::new(scenario.engine.clone())),
            Box::new(GoogleBaseModel::new(scenario.engine.clone())),
        ];
        let rows = build_matrix(&mut models);
        assert_eq!(rows.len(), 6);

        let get = |name: &str| rows.iter().find(|r| r.system == name).unwrap();
        // The paper's key contrasts, re-derived from live probes:
        // only Symphony and Google Base ingest proprietary data.
        assert!(get("Symphony").proprietary_data.contains("uploads"));
        assert!(get("Google Base").proprietary_data.contains("uploads"));
        for sys in ["Y! BOSS", "Rollyo", "Eurekster", "Google Custom"] {
            assert!(
                !get(sys).proprietary_data.contains("uploads"),
                "{sys}: {}",
                get(sys).proprietary_data
            );
        }
        // Custom sites: everyone but Google Base.
        assert_eq!(get("Google Base").custom_sites, "No");
        assert_eq!(get("Symphony").custom_sites, "Supported");
        // Symphony is the only no-code drag'n'drop UI.
        assert!(get("Symphony").custom_ui.contains("Drag'n'drop"));
        assert!(get("Y! BOSS").custom_ui.contains("code required"));
        // Monetization policies.
        assert!(get("Symphony").monetization.contains("voluntary"));
        assert!(get("Eurekster").monetization.contains("mandatory"));
    }

    #[test]
    fn render_produces_aligned_table() {
        let rows = vec![
            ComparisonRow {
                system: "A".into(),
                search_api: "X".into(),
                custom_sites: "Yes".into(),
                proprietary_data: "No".into(),
                monetization: "None".into(),
                custom_ui: "No".into(),
                deployment: "None".into(),
            },
            ComparisonRow {
                system: "B".into(),
                search_api: "Y".into(),
                custom_sites: "No".into(),
                proprietary_data: "Yes".into(),
                monetization: "Ads".into(),
                custom_ui: "Yes".into(),
                deployment: "Hosted".into(),
            },
        ];
        let table = render_table(&rows);
        assert!(table.contains("| Search API"));
        assert!(table.contains("| A"));
        assert!(table.contains("| B"));
        assert!(table.contains("Deployment"));
        // Every line same width.
        let widths: std::collections::HashSet<usize> =
            table.lines().map(|l| l.chars().count()).collect();
        assert_eq!(widths.len(), 1, "{table}");
    }
}
