//! Site Suggest (paper §II-A, "Built-in Services", citing [2]).
//!
//! *"A Site Suggest feature is provided that can suggest additional
//! related sites to include based on the set already specified."*
//!
//! Following the wisdom-of-the-crowds approach of Fuxman et al. [2],
//! two sites are related when users reach them through the same
//! queries. We build a site -> query-set map from click logs and rank
//! candidate sites by summed Jaccard similarity to the seed set.

use crate::logs::LogEntry;
use std::collections::{BTreeMap, BTreeSet};

/// A suggestion with its relatedness score.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// Suggested domain.
    pub domain: String,
    /// Summed Jaccard similarity to the seeds (higher = more related).
    pub score: f64,
}

/// The Site Suggest model.
#[derive(Debug, Default)]
pub struct SiteSuggest {
    site_queries: BTreeMap<String, BTreeSet<String>>,
}

impl SiteSuggest {
    /// Build the model from click logs.
    pub fn from_logs(logs: &[LogEntry]) -> SiteSuggest {
        let mut site_queries: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for l in logs {
            site_queries
                .entry(l.domain.clone())
                .or_default()
                .insert(l.query.clone());
        }
        SiteSuggest { site_queries }
    }

    /// Number of sites with click evidence.
    pub fn known_sites(&self) -> usize {
        self.site_queries.len()
    }

    /// Suggest up to `k` sites related to `seeds` (seeds themselves are
    /// excluded). Sites with no shared query are omitted.
    pub fn suggest(&self, seeds: &[&str], k: usize) -> Vec<Suggestion> {
        let seed_sets: Vec<&BTreeSet<String>> = seeds
            .iter()
            .filter_map(|s| self.site_queries.get(*s))
            .collect();
        if seed_sets.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<Suggestion> = self
            .site_queries
            .iter()
            .filter(|(domain, _)| !seeds.contains(&domain.as_str()))
            .filter_map(|(domain, queries)| {
                let score: f64 = seed_sets.iter().map(|s| jaccard(s, queries)).sum();
                (score > 0.0).then(|| Suggestion {
                    domain: domain.clone(),
                    score,
                })
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.domain.cmp(&b.domain))
        });
        scored.truncate(k);
        scored
    }
}

fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    if inter == 0 {
        return 0.0;
    }
    inter as f64 / (a.len() + b.len() - inter) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(domain: &str, query: &str) -> LogEntry {
        LogEntry {
            session: 0,
            query: query.into(),
            url: format!("http://{domain}/x"),
            domain: domain.into(),
            position: 0,
            timestamp: 0,
        }
    }

    fn model() -> SiteSuggest {
        SiteSuggest::from_logs(&[
            entry("gamespot.com", "galactic raiders review"),
            entry("gamespot.com", "best shooter"),
            entry("ign.com", "galactic raiders review"),
            entry("ign.com", "best shooter"),
            entry("teamxbox.com", "best shooter"),
            entry("winespectator.com", "bordeaux vintage"),
        ])
    }

    #[test]
    fn related_site_suggested_for_seed() {
        let m = model();
        let s = m.suggest(&["gamespot.com"], 5);
        assert_eq!(s[0].domain, "ign.com");
        assert!(s.iter().any(|x| x.domain == "teamxbox.com"));
    }

    #[test]
    fn unrelated_site_not_suggested() {
        let m = model();
        let s = m.suggest(&["gamespot.com"], 5);
        assert!(s.iter().all(|x| x.domain != "winespectator.com"));
    }

    #[test]
    fn seeds_excluded_from_output() {
        let m = model();
        let s = m.suggest(&["gamespot.com", "ign.com"], 5);
        assert!(s
            .iter()
            .all(|x| x.domain != "gamespot.com" && x.domain != "ign.com"));
    }

    #[test]
    fn multiple_seeds_accumulate_evidence() {
        let m = model();
        let one = m.suggest(&["gamespot.com"], 5);
        let two = m.suggest(&["gamespot.com", "ign.com"], 5);
        let score = |s: &[Suggestion]| {
            s.iter()
                .find(|x| x.domain == "teamxbox.com")
                .map(|x| x.score)
                .unwrap_or(0.0)
        };
        assert!(score(&two) > score(&one));
    }

    #[test]
    fn unknown_seed_yields_nothing() {
        let m = model();
        assert!(m.suggest(&["nosuch.example"], 5).is_empty());
    }

    #[test]
    fn k_truncates_ordered_output() {
        let m = model();
        let s = m.suggest(&["gamespot.com"], 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].domain, "ign.com");
    }

    #[test]
    fn jaccard_edges() {
        let empty = BTreeSet::new();
        let mut a = BTreeSet::new();
        a.insert("q".to_string());
        assert_eq!(jaccard(&empty, &a), 0.0);
        assert_eq!(jaccard(&a, &a), 1.0);
    }
}
