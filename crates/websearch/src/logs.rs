//! Synthetic query/click logs.
//!
//! Substitute for real usage data (DESIGN.md): seeded sessions issue
//! topical queries against the engine and click with position bias.
//! The logs feed Site Suggest (paper ref [2]) and the monetization
//! analytics, and the paper's conclusion — community query/click logs
//! as relevance signals — is exactly what these streams model.

use crate::engine::{SearchConfig, SearchEngine, Vertical};
use crate::topic::Topic;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One click event (queries without clicks produce no entry).
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Session id.
    pub session: u32,
    /// The query issued.
    pub query: String,
    /// Clicked URL.
    pub url: String,
    /// Clicked domain.
    pub domain: String,
    /// Result position (0-based).
    pub position: usize,
    /// Event time (epoch seconds, synthetic timeline).
    pub timestamp: i64,
}

/// Log generation parameters.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of user sessions.
    pub sessions: usize,
    /// Queries per session (uniform 1..=this).
    pub max_queries_per_session: usize,
    /// Topics users draw queries from.
    pub topics: Vec<Topic>,
    /// Position-bias decay per rank (probability multiplier).
    pub position_decay: f64,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            seed: 7,
            sessions: 200,
            max_queries_per_session: 4,
            topics: vec![Topic::Games, Topic::Wine, Topic::Movies],
            position_decay: 0.55,
        }
    }
}

/// Simulate sessions and return click events in time order.
pub fn generate_logs(engine: &SearchEngine, config: &LogConfig) -> Vec<LogEntry> {
    assert!(!config.topics.is_empty(), "logs need at least one topic");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::new();
    let mut clock: i64 = 1_257_206_400; // 2009-11-03, the paper's era
    let word_zipf: Vec<Zipf> = config
        .topics
        .iter()
        .map(|t| Zipf::new(t.words().len(), 1.1))
        .collect();
    for session in 0..config.sessions as u32 {
        let ti = rng.gen_range(0..config.topics.len());
        let topic = config.topics[ti];
        let n_queries = rng.gen_range(1..=config.max_queries_per_session);
        for _ in 0..n_queries {
            let words = topic.words();
            let n_words = rng.gen_range(1..=3usize);
            let mut q = String::new();
            for i in 0..n_words {
                if i > 0 {
                    q.push(' ');
                }
                q.push_str(words[word_zipf[ti].sample(&mut rng)]);
            }
            clock += rng.gen_range(5..120);
            let results = engine.search(Vertical::Web, &q, &SearchConfig::default(), 10);
            for (pos, r) in results.iter().enumerate() {
                // Position bias x site quality drives the click.
                let quality = engine
                    .corpus()
                    .sites
                    .iter()
                    .find(|s| s.domain == r.domain)
                    .map(|s| s.quality)
                    .unwrap_or(0.5);
                let p = config.position_decay.powi(pos as i32) * (0.3 + 0.7 * quality);
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    out.push(LogEntry {
                        session,
                        query: q.clone(),
                        url: r.url.clone(),
                        domain: r.domain.clone(),
                        position: pos,
                        timestamp: clock,
                    });
                    // Mostly single-click sessions per query.
                    if rng.gen_bool(0.8) {
                        break;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};

    fn engine() -> SearchEngine {
        SearchEngine::new(Corpus::generate(&CorpusConfig {
            sites_per_topic: 3,
            pages_per_site: 6,
            ..CorpusConfig::default()
        }))
    }

    #[test]
    fn logs_are_nonempty_and_deterministic() {
        let e = engine();
        let a = generate_logs(&e, &LogConfig::default());
        let b = generate_logs(&e, &LogConfig::default());
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn clicks_skew_to_top_positions() {
        let e = engine();
        let logs = generate_logs(
            &e,
            &LogConfig {
                sessions: 400,
                ..LogConfig::default()
            },
        );
        let top = logs.iter().filter(|l| l.position == 0).count();
        let deep = logs.iter().filter(|l| l.position >= 5).count();
        assert!(top > deep * 3, "top={top} deep={deep}");
    }

    #[test]
    fn timestamps_monotone_within_generation() {
        let e = engine();
        let logs = generate_logs(&e, &LogConfig::default());
        for w in logs.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
    }

    #[test]
    fn clicked_urls_exist_in_corpus() {
        let e = engine();
        let logs = generate_logs(&e, &LogConfig::default());
        for l in logs.iter().take(50) {
            assert!(e.corpus().page_by_url(&l.url).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn empty_topics_panics() {
        let e = engine();
        generate_logs(
            &e,
            &LogConfig {
                topics: vec![],
                ..LogConfig::default()
            },
        );
    }
}
