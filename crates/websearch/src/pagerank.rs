//! PageRank over the synthetic link graph.
//!
//! The engine blends BM25 with a static rank; on the synthetic web the
//! static rank is PageRank mixed with the site's editorial quality, so
//! authoritative sites (gamespot, winespectator, ...) surface first —
//! the behaviour Symphony's site-restricted supplemental searches rely
//! on.

use crate::corpus::Corpus;

/// Damping factor (the classic 0.85).
pub const DAMPING: f64 = 0.85;

/// Compute PageRank with `iterations` of power iteration. Returns one
/// score per page, summing to ~1.
pub fn pagerank(corpus: &Corpus, iterations: usize) -> Vec<f64> {
    let n = corpus.pages.len();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for (i, page) in corpus.pages.iter().enumerate() {
            if page.links.is_empty() {
                dangling += rank[i];
            } else {
                let share = rank[i] / page.links.len() as f64;
                for &t in &page.links {
                    next[t] += share;
                }
            }
        }
        let base = (1.0 - DAMPING) / n as f64 + DAMPING * dangling / n as f64;
        for x in next.iter_mut() {
            *x = base + DAMPING * *x;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Static rank per page in `[0, 1]`: normalized PageRank blended with
/// site quality (60% quality, 40% link signal).
pub fn static_rank(corpus: &Corpus, iterations: usize) -> Vec<f64> {
    let pr = pagerank(corpus, iterations);
    let max = pr.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    pr.iter()
        .enumerate()
        .map(|(i, &r)| 0.6 * corpus.quality(i) + 0.4 * (r / max))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig};

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusConfig {
            sites_per_topic: 2,
            pages_per_site: 5,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn ranks_sum_to_one() {
        let c = corpus();
        let pr = pagerank(&c, 20);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }

    #[test]
    fn all_ranks_positive() {
        let c = corpus();
        assert!(pagerank(&c, 20).iter().all(|&r| r > 0.0));
    }

    #[test]
    fn empty_corpus() {
        let c = Corpus::generate(&CorpusConfig {
            sites_per_topic: 0,
            pages_per_site: 0,
            ..CorpusConfig::default()
        });
        assert!(pagerank(&c, 5).is_empty());
    }

    #[test]
    fn static_rank_in_unit_interval_and_tracks_quality() {
        let c = corpus();
        let sr = static_rank(&c, 20);
        assert!(sr.iter().all(|&r| (0.0..=1.0).contains(&r)));
        // The best authoritative page outranks the average generic one.
        let auth_best = (0..c.pages.len())
            .filter(|&i| c.quality(i) > 0.9)
            .map(|i| sr[i])
            .fold(f64::MIN, f64::max);
        let generic_avg = {
            let xs: Vec<f64> = (0..c.pages.len())
                .filter(|&i| c.quality(i) < 0.8)
                .map(|i| sr[i])
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(auth_best > generic_avg);
    }

    #[test]
    fn more_iterations_converge() {
        let c = corpus();
        let a = pagerank(&c, 30);
        let b = pagerank(&c, 60);
        let diff: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff < 1e-3, "diff = {diff}");
    }
}
