//! # symphony-web
//!
//! The simulated general web search engine — the reproduction's
//! substitute for the Bing infrastructure Symphony was built on
//! (see the substitution table in DESIGN.md).
//!
//! * [`topic`] — topical vocabularies for the synthetic web.
//! * [`corpus`] — deterministic site/page/link-graph generator with
//!   entity weaving (reviews, screenshots, trailers, news mentions).
//! * [`pagerank`] — static rank from the link graph + site quality.
//! * [`engine`] — the four verticals (web/image/video/news) with the
//!   customization hooks Symphony exposes: site restriction, query
//!   augmentation, preferred sites.
//! * [`logs`] — synthetic query/click sessions with position bias.
//! * [`sitesuggest`] — the paper's Site Suggest feature (ref [2]).
//! * [`fetcher`] — lets the store's crawler crawl the synthetic web.
//!
//! ## Quick example
//!
//! ```
//! use symphony_web::corpus::{Corpus, CorpusConfig};
//! use symphony_web::engine::{SearchConfig, SearchEngine, Vertical};
//! use symphony_web::topic::Topic;
//!
//! let config = CorpusConfig::default().with_entities(Topic::Games, ["Galactic Raiders"]);
//! let engine = SearchEngine::new(Corpus::generate(&config));
//! let results = engine.search(
//!     Vertical::Web,
//!     "Galactic Raiders review",
//!     &SearchConfig::default().restrict_to(["gamespot.com", "ign.com"]),
//!     5,
//! );
//! assert!(results.iter().all(|r| r.domain == "gamespot.com" || r.domain == "ign.com"));
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod engine;
pub mod fetcher;
pub mod logs;
pub mod pagerank;
pub mod sitesuggest;
pub mod topic;
pub mod zipf;

pub use corpus::{Corpus, CorpusConfig, Page, PageKind, Site};
pub use engine::{PoolEntry, SearchConfig, SearchEngine, ShardPool, Vertical, WebResult};
pub use fetcher::CorpusFetcher;
pub use logs::{generate_logs, LogConfig, LogEntry};
pub use sitesuggest::{SiteSuggest, Suggestion};
pub use topic::Topic;
