//! Zipf-distributed sampling.
//!
//! Word frequencies, site popularity, and query popularity are all
//! head-heavy; a rank-`r` item is sampled with probability
//! proportional to `1 / r^s`. Implemented as an inverse-CDF table
//! (the crate avoids `rand_distr` per the dependency budget).

use rand::Rng;

/// A Zipf sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` items with exponent `s` (typically
    /// 0.8–1.2).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf over zero items");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 1..=n {
            total += 1.0 / (r as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize.
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Sample a rank in `0..n` (0 is the most likely).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in CDF"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Never empty (constructor panics on 0), but clippy insists.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn head_dominates() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[60]);
        // Rank 0 of a 100-item Zipf(1.0) carries ~19% of the mass.
        assert!(counts[0] > 2_500, "head count {}", counts[0]);
    }

    #[test]
    fn samples_are_in_range() {
        let z = Zipf::new(5, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn single_item() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zero_items_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn deterministic_with_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
