//! Topics and topical vocabularies for the synthetic web.
//!
//! The paper's scenarios revolve around topical verticals (video
//! games, wine, movies, health, events). Each topic carries a small
//! vocabulary; page text is a Zipf-weighted mixture of topic words and
//! general words, which gives BM25 something realistic to rank.

/// A content topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Topic {
    /// Video games (the GamerQueen scenario).
    Games,
    /// Wine (the connoisseur scenario).
    Wine,
    /// Movies (the video-store scenario).
    Movies,
    /// Health (WebMD-style).
    Health,
    /// Travel (Expedia-style).
    Travel,
    /// Current events.
    News,
}

impl Topic {
    /// All topics in declaration order.
    pub const ALL: [Topic; 6] = [
        Topic::Games,
        Topic::Wine,
        Topic::Movies,
        Topic::Health,
        Topic::Travel,
        Topic::News,
    ];

    /// Lowercase name, usable in domains.
    pub fn name(self) -> &'static str {
        match self {
            Topic::Games => "games",
            Topic::Wine => "wine",
            Topic::Movies => "movies",
            Topic::Health => "health",
            Topic::Travel => "travel",
            Topic::News => "news",
        }
    }

    /// Topical vocabulary (most-frequent first; sampled with a Zipf
    /// distribution so the head dominates like real text).
    pub fn words(self) -> &'static [&'static str] {
        match self {
            Topic::Games => &[
                "game",
                "review",
                "player",
                "level",
                "shooter",
                "arcade",
                "console",
                "score",
                "boss",
                "quest",
                "multiplayer",
                "graphics",
                "gameplay",
                "strategy",
                "puzzle",
                "racing",
                "adventure",
                "trailer",
                "release",
                "studio",
                "controller",
                "pixel",
                "campaign",
                "coop",
                "speedrun",
                "mod",
                "patch",
                "leaderboard",
                "achievement",
                "sequel",
            ],
            Topic::Wine => &[
                "wine",
                "vintage",
                "grape",
                "tasting",
                "cellar",
                "bordeaux",
                "cabernet",
                "merlot",
                "chardonnay",
                "vineyard",
                "oak",
                "tannin",
                "aroma",
                "bottle",
                "cork",
                "pairing",
                "chateau",
                "harvest",
                "barrel",
                "sommelier",
                "acidity",
                "terroir",
                "blend",
                "decant",
                "riesling",
                "pinot",
                "noir",
                "rose",
                "sparkling",
                "reserve",
            ],
            Topic::Movies => &[
                "movie",
                "film",
                "director",
                "actor",
                "scene",
                "trailer",
                "review",
                "cinema",
                "drama",
                "comedy",
                "thriller",
                "plot",
                "sequel",
                "screenplay",
                "studio",
                "cast",
                "premiere",
                "award",
                "documentary",
                "animation",
                "score",
                "editing",
                "remake",
                "festival",
                "boxoffice",
                "critic",
                "rating",
                "genre",
                "classic",
                "blockbuster",
            ],
            Topic::Health => &[
                "health",
                "symptom",
                "doctor",
                "treatment",
                "diet",
                "exercise",
                "vitamin",
                "allergy",
                "sleep",
                "stress",
                "nutrition",
                "therapy",
                "clinic",
                "vaccine",
                "wellness",
                "fitness",
                "recovery",
                "diagnosis",
                "prescription",
                "immune",
                "protein",
                "hydration",
                "posture",
                "cardio",
                "checkup",
                "remedy",
                "dosage",
                "injury",
                "prevention",
                "screening",
            ],
            Topic::Travel => &[
                "travel",
                "flight",
                "hotel",
                "beach",
                "tour",
                "island",
                "museum",
                "passport",
                "luggage",
                "itinerary",
                "resort",
                "cruise",
                "hiking",
                "landmark",
                "airfare",
                "booking",
                "adventure",
                "culture",
                "cuisine",
                "festival",
                "backpack",
                "visa",
                "souvenir",
                "airport",
                "train",
                "roadtrip",
                "guide",
                "map",
                "season",
                "budget",
            ],
            Topic::News => &[
                "report",
                "election",
                "market",
                "policy",
                "economy",
                "breaking",
                "interview",
                "statement",
                "official",
                "investigation",
                "budget",
                "council",
                "minister",
                "summit",
                "protest",
                "verdict",
                "announcement",
                "forecast",
                "analysis",
                "poll",
                "debate",
                "reform",
                "agency",
                "spokesperson",
                "headline",
                "coverage",
                "update",
                "crisis",
                "agreement",
                "conference",
            ],
        }
    }
}

/// General filler vocabulary shared by every page.
pub const GENERAL_WORDS: &[&str] = &[
    "today", "people", "world", "time", "year", "good", "great", "best", "guide", "full", "online",
    "free", "official", "home", "page", "read", "find", "learn", "top", "story", "latest",
    "popular", "detail", "complete", "simple", "quick", "expert", "local", "daily", "weekly",
    "special", "classic", "modern", "light", "deep", "open", "final", "early", "late", "every",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_topic_has_a_rich_vocabulary() {
        for t in Topic::ALL {
            assert!(t.words().len() >= 25, "{t:?}");
            assert!(!t.name().is_empty());
        }
    }

    #[test]
    fn vocabularies_are_lowercase_single_tokens() {
        for t in Topic::ALL {
            for w in t.words() {
                assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Topic::ALL.iter().map(|t| t.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Topic::ALL.len());
    }
}
