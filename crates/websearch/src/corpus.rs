//! Deterministic synthetic web corpus.
//!
//! The substitution for Bing's crawl (DESIGN.md): a seeded generator
//! produces topical sites with quality scores, pages with
//! Zipf-weighted topical text, a link graph, and media/news objects
//! for the image/video/news verticals. Application scenarios inject
//! *entities* (game titles, wines, movies) and the generator weaves
//! review pages, screenshots, trailers, and news mentions around them
//! on the authoritative sites — exactly the supplemental content the
//! paper's GamerQueen example retrieves.

use crate::topic::{Topic, GENERAL_WORDS};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration for [`Corpus::generate`].
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// RNG seed; equal seeds produce byte-identical corpora.
    pub seed: u64,
    /// Generic (non-authoritative) sites generated per topic.
    pub sites_per_topic: usize,
    /// Article pages per site.
    pub pages_per_site: usize,
    /// Named entities to weave in, with their topic.
    pub entities: Vec<(Topic, String)>,
    /// Zipf exponent for word sampling.
    pub zipf_s: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 42,
            sites_per_topic: 6,
            pages_per_site: 12,
            entities: Vec::new(),
            zipf_s: 1.0,
        }
    }
}

impl CorpusConfig {
    /// Add entities for one topic.
    pub fn with_entities<I, S>(mut self, topic: Topic, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.entities
            .extend(names.into_iter().map(|n| (topic, n.into())));
        self
    }
}

/// A web site.
#[derive(Debug, Clone)]
pub struct Site {
    /// Domain ("gamespot.com").
    pub domain: String,
    /// Main topic.
    pub topic: Topic,
    /// Editorial quality in `[0, 1]`; authoritative sites are > 0.8.
    pub quality: f64,
}

/// What kind of object a page is (drives vertical membership).
#[derive(Debug, Clone, PartialEq)]
pub enum PageKind {
    /// Plain article (web vertical).
    Article,
    /// Editorial review of an entity (web vertical).
    Review {
        /// Reviewed entity name.
        entity: String,
    },
    /// An image object (image vertical).
    Image {
        /// Image file URL.
        src: String,
        /// Alt text.
        alt: String,
    },
    /// A video object (video vertical).
    Video {
        /// Duration in seconds.
        duration_s: u32,
    },
    /// A dated news article (news vertical).
    News {
        /// Publication time (epoch seconds).
        date: i64,
    },
}

/// One page of the synthetic web.
#[derive(Debug, Clone)]
pub struct Page {
    /// Index into [`Corpus::sites`].
    pub site: usize,
    /// Absolute URL.
    pub url: String,
    /// Title.
    pub title: String,
    /// Body text.
    pub body: String,
    /// Outgoing links (indexes into [`Corpus::pages`]).
    pub links: Vec<usize>,
    /// Object kind.
    pub kind: PageKind,
}

/// The generated web. `Clone` so document-partitioned shard engines
/// can each hold the full page table (snippets, domains, static rank
/// all key off global page indexes) while indexing only their slice.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All sites.
    pub sites: Vec<Site>,
    /// All pages.
    pub pages: Vec<Page>,
    by_url: HashMap<String, usize>,
}

/// Authoritative domains per topic — the sites the paper names
/// (gamespot/ign/teamxbox) plus analogues for the other scenarios.
pub fn authoritative_domains(topic: Topic) -> &'static [(&'static str, f64)] {
    match topic {
        Topic::Games => &[
            ("gamespot.com", 0.95),
            ("ign.com", 0.90),
            ("teamxbox.com", 0.85),
        ],
        Topic::Wine => &[("winespectator.com", 0.95), ("cellartracker.com", 0.88)],
        Topic::Movies => &[("imdb.com", 0.95), ("rottentomatoes.com", 0.90)],
        Topic::Health => &[("webmd.com", 0.95)],
        Topic::Travel => &[("expedia.com", 0.92)],
        Topic::News => &[("worldnews.com", 0.90)],
    }
}

/// Epoch of 2009-01-01, the base for synthetic news dates (the paper's
/// era).
const NEWS_EPOCH: i64 = 1_230_768_000;

impl Corpus {
    /// Generate a corpus from `config` (deterministic per seed).
    pub fn generate(config: &CorpusConfig) -> Corpus {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut sites = Vec::new();
        let mut pages: Vec<Page> = Vec::new();

        for topic in Topic::ALL {
            for (domain, quality) in authoritative_domains(topic) {
                sites.push(Site {
                    domain: domain.to_string(),
                    topic,
                    quality: *quality,
                });
            }
            for i in 0..config.sites_per_topic {
                let w1 = topic.words()[rng.gen_range(0..topic.words().len())];
                let w2 = GENERAL_WORDS[rng.gen_range(0..GENERAL_WORDS.len())];
                sites.push(Site {
                    domain: format!("{w1}{w2}{i}.example.com"),
                    topic,
                    quality: rng.gen_range(0.2..0.8),
                });
            }
        }

        // Article pages for every site.
        for (site_idx, site) in sites.iter().enumerate() {
            let zipf_topic = Zipf::new(site.topic.words().len(), config.zipf_s);
            let zipf_general = Zipf::new(GENERAL_WORDS.len(), config.zipf_s);
            for p in 0..config.pages_per_site {
                let title = title_words(&mut rng, site.topic, &zipf_topic);
                let body = body_text(&mut rng, site.topic, &zipf_topic, &zipf_general);
                let kind = if site.topic == Topic::News || rng.gen_bool(0.12) {
                    PageKind::News {
                        date: NEWS_EPOCH + rng.gen_range(0..300) * 86_400,
                    }
                } else {
                    PageKind::Article
                };
                pages.push(Page {
                    site: site_idx,
                    url: format!("http://{}/{}-{p}", site.domain, slug(&title)),
                    title,
                    body,
                    links: Vec::new(),
                    kind,
                });
            }
        }

        // Entity pages: reviews on authoritative sites, plus media and
        // news mentions.
        for (topic, entity) in &config.entities {
            let hosts: Vec<usize> = sites
                .iter()
                .enumerate()
                .filter(|(_, s)| s.topic == *topic && s.quality > 0.8)
                .map(|(i, _)| i)
                .collect();
            let zipf_topic = Zipf::new(topic.words().len(), config.zipf_s);
            let zipf_general = Zipf::new(GENERAL_WORDS.len(), config.zipf_s);
            for &host in &hosts {
                let domain = sites[host].domain.clone();
                // Review article.
                let mut body = format!(
                    "{entity} review. Our verdict on {entity}: {}. ",
                    if sites[host].quality > 0.9 {
                        "a must play"
                    } else {
                        "worth a look"
                    }
                );
                body.push_str(&body_text(&mut rng, *topic, &zipf_topic, &zipf_general));
                body.push_str(&format!(" More about {entity} inside."));
                pages.push(Page {
                    site: host,
                    url: format!("http://{domain}/review/{}", slug(entity)),
                    title: format!("{entity} review"),
                    body,
                    links: Vec::new(),
                    kind: PageKind::Review {
                        entity: entity.clone(),
                    },
                });
                // Screenshot / image object.
                pages.push(Page {
                    site: host,
                    url: format!("http://{domain}/media/{}.jpg.html", slug(entity)),
                    title: format!("{entity} screenshot"),
                    body: format!("official {entity} screenshot gallery"),
                    links: Vec::new(),
                    kind: PageKind::Image {
                        src: format!("http://{domain}/img/{}.jpg", slug(entity)),
                        alt: format!("{entity} screenshot"),
                    },
                });
                // Trailer / video object.
                pages.push(Page {
                    site: host,
                    url: format!("http://{domain}/video/{}", slug(entity)),
                    title: format!("{entity} trailer"),
                    body: format!("watch the {entity} trailer in high definition"),
                    links: Vec::new(),
                    kind: PageKind::Video {
                        duration_s: rng.gen_range(60..240),
                    },
                });
            }
            // One news mention on a news site.
            if let Some((news_host, _)) = sites
                .iter()
                .enumerate()
                .find(|(_, s)| s.topic == Topic::News)
            {
                pages.push(Page {
                    site: news_host,
                    url: format!("http://{}/story/{}", sites[news_host].domain, slug(entity)),
                    title: format!("{entity} makes headlines"),
                    body: format!(
                        "industry report: {entity} draws attention this week. analysts comment."
                    ),
                    links: Vec::new(),
                    kind: PageKind::News {
                        date: NEWS_EPOCH + rng.gen_range(0..300) * 86_400,
                    },
                });
            }
        }

        // Link graph: 2..5 outlinks per page, biased toward same-topic
        // high-quality targets (gives PageRank a signal correlated with
        // editorial quality).
        let n = pages.len();
        if n > 1 {
            for i in 0..n {
                let out = rng.gen_range(2..=5usize);
                let my_topic = sites[pages[i].site].topic;
                let mut links = Vec::with_capacity(out);
                for _ in 0..out {
                    // Rejection-sample a target preferring same topic
                    // and quality.
                    let mut best = None;
                    for _ in 0..6 {
                        let t = rng.gen_range(0..n);
                        if t == i {
                            continue;
                        }
                        let s = &sites[pages[t].site];
                        let affinity = if s.topic == my_topic { 0.6 } else { 0.1 };
                        if rng.gen_bool((affinity + 0.4 * s.quality).min(1.0)) {
                            best = Some(t);
                            break;
                        }
                        best.get_or_insert(t);
                    }
                    if let Some(t) = best {
                        if !links.contains(&t) {
                            links.push(t);
                        }
                    }
                }
                pages[i].links = links;
            }
        }

        let by_url = pages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.url.clone(), i))
            .collect();
        Corpus {
            sites,
            pages,
            by_url,
        }
    }

    /// Append a freshly crawled page, registering its URL. The page's
    /// `site` must reference an existing site and its URL must be new
    /// (re-crawls of a known URL go through
    /// [`SearchEngine::ingest_page`](crate::engine::SearchEngine::ingest_page),
    /// which replaces the page in place instead).
    pub fn push_page(&mut self, page: Page) -> usize {
        assert!(page.site < self.sites.len(), "page references unknown site");
        let idx = self.pages.len();
        let prev = self.by_url.insert(page.url.clone(), idx);
        assert!(prev.is_none(), "URL already in corpus: {}", page.url);
        self.pages.push(page);
        idx
    }

    /// Look up a page by URL.
    pub fn page_by_url(&self, url: &str) -> Option<&Page> {
        self.by_url.get(url).map(|&i| &self.pages[i])
    }

    /// Position of a page in [`Corpus::pages`], looked up by URL.
    pub fn page_index_by_url(&self, url: &str) -> Option<usize> {
        self.by_url.get(url).copied()
    }

    /// Domain of the page at `idx`.
    pub fn domain(&self, idx: usize) -> &str {
        &self.sites[self.pages[idx].site].domain
    }

    /// Site quality of the page at `idx`.
    pub fn quality(&self, idx: usize) -> f64 {
        self.sites[self.pages[idx].site].quality
    }
}

fn slug(title: &str) -> String {
    let mut s: String = title
        .to_lowercase()
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '-' })
        .collect();
    while s.contains("--") {
        s = s.replace("--", "-");
    }
    s.trim_matches('-').to_string()
}

fn title_words(rng: &mut StdRng, topic: Topic, zipf: &Zipf) -> String {
    let n = rng.gen_range(3..=5);
    let words = topic.words();
    let mut title = String::new();
    for i in 0..n {
        if i > 0 {
            title.push(' ');
        }
        let w = words[zipf.sample(rng)];
        // Capitalize.
        let mut cs = w.chars();
        if let Some(c) = cs.next() {
            title.extend(c.to_uppercase());
            title.push_str(cs.as_str());
        }
    }
    title
}

fn body_text(rng: &mut StdRng, topic: Topic, zipf_topic: &Zipf, zipf_general: &Zipf) -> String {
    let len = rng.gen_range(40..120);
    let words = topic.words();
    let mut body = String::with_capacity(len * 8);
    for i in 0..len {
        if i > 0 {
            body.push(' ');
        }
        if rng.gen_bool(0.7) {
            body.push_str(words[zipf_topic.sample(rng)]);
        } else {
            body.push_str(GENERAL_WORDS[zipf_general.sample(rng)]);
        }
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CorpusConfig {
        CorpusConfig {
            sites_per_topic: 2,
            pages_per_site: 4,
            ..CorpusConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(&small());
        let b = Corpus::generate(&small());
        assert_eq!(a.pages.len(), b.pages.len());
        for (x, y) in a.pages.iter().zip(&b.pages) {
            assert_eq!(x.url, y.url);
            assert_eq!(x.body, y.body);
            assert_eq!(x.links, y.links);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(&small());
        let b = Corpus::generate(&CorpusConfig {
            seed: 43,
            ..small()
        });
        assert!(a.pages.iter().zip(&b.pages).any(|(x, y)| x.body != y.body));
    }

    #[test]
    fn authoritative_sites_present() {
        let c = Corpus::generate(&small());
        assert!(c.sites.iter().any(|s| s.domain == "gamespot.com"));
        assert!(c.sites.iter().any(|s| s.domain == "winespectator.com"));
    }

    #[test]
    fn urls_are_unique_and_resolvable() {
        let c = Corpus::generate(&small());
        assert_eq!(c.by_url.len(), c.pages.len());
        for p in &c.pages {
            assert_eq!(c.page_by_url(&p.url).unwrap().url, p.url);
        }
    }

    #[test]
    fn entities_get_reviews_media_and_news() {
        let cfg = small().with_entities(Topic::Games, ["Galactic Raiders"]);
        let c = Corpus::generate(&cfg);
        let reviews: Vec<&Page> = c
            .pages
            .iter()
            .filter(
                |p| matches!(&p.kind, PageKind::Review { entity } if entity == "Galactic Raiders"),
            )
            .collect();
        // One review per authoritative games site.
        assert_eq!(reviews.len(), 3);
        assert!(reviews
            .iter()
            .any(|p| c.sites[p.site].domain == "gamespot.com"));
        assert!(c
            .pages
            .iter()
            .any(|p| matches!(&p.kind, PageKind::Image { alt, .. } if alt.contains("Galactic"))));
        assert!(c
            .pages
            .iter()
            .any(|p| matches!(&p.kind, PageKind::Video { .. }) && p.title.contains("Galactic")));
        assert!(c
            .pages
            .iter()
            .any(|p| matches!(&p.kind, PageKind::News { .. }) && p.title.contains("Galactic")));
    }

    #[test]
    fn links_point_to_valid_pages_and_not_self() {
        let c = Corpus::generate(&small());
        for (i, p) in c.pages.iter().enumerate() {
            for &l in &p.links {
                assert!(l < c.pages.len());
                assert_ne!(l, i);
            }
        }
    }

    #[test]
    fn news_sites_produce_dated_pages() {
        let c = Corpus::generate(&small());
        let news_pages = c
            .pages
            .iter()
            .filter(|p| matches!(p.kind, PageKind::News { .. }))
            .count();
        assert!(news_pages > 0);
    }

    #[test]
    fn slugs_are_url_safe() {
        assert_eq!(slug("Galactic Raiders!"), "galactic-raiders");
        assert_eq!(slug("  a  b  "), "a-b");
    }
}
