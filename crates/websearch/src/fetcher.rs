//! [`PageFetcher`] implementation over the synthetic web, so the
//! store's URL crawler (paper: "URL crawling" upload method) can crawl
//! it.

use crate::corpus::Corpus;
use symphony_store::{FetchedPage, PageFetcher};

/// Fetches pages straight from a [`Corpus`].
#[derive(Debug, Clone, Copy)]
pub struct CorpusFetcher<'a> {
    corpus: &'a Corpus,
}

impl<'a> CorpusFetcher<'a> {
    /// Wrap a corpus.
    pub fn new(corpus: &'a Corpus) -> Self {
        CorpusFetcher { corpus }
    }
}

impl PageFetcher for CorpusFetcher<'_> {
    fn fetch(&self, url: &str) -> Option<FetchedPage> {
        let page = self.corpus.page_by_url(url)?;
        Some(FetchedPage {
            url: page.url.clone(),
            title: page.title.clone(),
            body: page.body.clone(),
            links: page
                .links
                .iter()
                .map(|&i| self.corpus.pages[i].url.clone())
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use symphony_store::ingest::crawl;

    #[test]
    fn fetch_known_and_unknown() {
        let corpus = Corpus::generate(&CorpusConfig {
            sites_per_topic: 1,
            pages_per_site: 3,
            ..CorpusConfig::default()
        });
        let fetcher = CorpusFetcher::new(&corpus);
        let url = corpus.pages[0].url.clone();
        let page = fetcher.fetch(&url).unwrap();
        assert_eq!(page.url, url);
        assert!(fetcher.fetch("http://missing.example/x").is_none());
    }

    #[test]
    fn store_crawler_crawls_the_synthetic_web() {
        let corpus = Corpus::generate(&CorpusConfig {
            sites_per_topic: 2,
            pages_per_site: 5,
            ..CorpusConfig::default()
        });
        let fetcher = CorpusFetcher::new(&corpus);
        let seed = corpus.pages[0].url.clone();
        let (table, report) = crawl("pages", &seed, 20, &fetcher);
        assert!(table.len() > 1, "crawl should follow links");
        assert!(table.len() <= 20);
        assert!(report.warnings.len() <= 1);
    }
}
