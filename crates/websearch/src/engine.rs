//! The simulated general web search engine ("Bing" in the paper).
//!
//! Four verticals (web / image / video / news) over the synthetic
//! corpus, each a `symphony-text` index blended with static rank.
//! The customization hooks Symphony exposes to designers — site
//! restriction, query augmentation, preferred-site boosts, result
//! count — are all per-request [`SearchConfig`] options, mirroring the
//! Google-Custom-Search-style knobs described in the paper's
//! introduction.

use crate::corpus::{Corpus, Page, PageKind};
use crate::logs::LogEntry;
use crate::pagerank::static_rank;
use std::collections::HashMap;
use std::sync::Arc;
use symphony_text::query::{Clause, ClauseKind, Occur};
use symphony_text::snippet::SnippetGenerator;
use symphony_text::spell::SpellSuggester;
use symphony_text::{
    Doc, DocId, FieldId, GlobalScoreStats, Index, IndexConfig, MaintenanceReport, Query, Searcher,
    SegmentPolicy,
};

/// Search verticals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vertical {
    /// Web pages (articles + reviews).
    Web,
    /// Image objects.
    Image,
    /// Video objects.
    Video,
    /// Dated news articles.
    News,
}

impl Vertical {
    /// The vertical a page belongs to, by its object kind.
    pub fn of_kind(kind: &PageKind) -> Vertical {
        match kind {
            PageKind::Article | PageKind::Review { .. } => Vertical::Web,
            PageKind::Image { .. } => Vertical::Image,
            PageKind::Video { .. } => Vertical::Video,
            PageKind::News { .. } => Vertical::News,
        }
    }

    /// All verticals.
    pub const ALL: [Vertical; 4] = [
        Vertical::Web,
        Vertical::Image,
        Vertical::Video,
        Vertical::News,
    ];

    /// Lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Vertical::Web => "web",
            Vertical::Image => "image",
            Vertical::Video => "video",
            Vertical::News => "news",
        }
    }
}

/// Per-request customization (paper: "Most services support additional
/// configuration, such as site restriction").
#[derive(Debug, Clone, Default)]
pub struct SearchConfig {
    /// Only results from these domains (empty = unrestricted). A
    /// domain matches itself and its subdomains.
    pub site_restrict: Vec<String>,
    /// Terms appended to every query (custom-search-style query
    /// augmentation).
    pub augment_terms: Vec<String>,
    /// Domains whose results get a preference boost (custom-search
    /// style reordering).
    pub prefer_sites: Vec<String>,
}

impl SearchConfig {
    /// Restrict to the given domains.
    pub fn restrict_to<I, S>(mut self, domains: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.site_restrict = domains.into_iter().map(Into::into).collect();
        self
    }

    /// Append augmentation terms.
    pub fn augment<I, S>(mut self, terms: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.augment_terms = terms.into_iter().map(Into::into).collect();
        self
    }

    /// Prefer the given domains.
    pub fn prefer<I, S>(mut self, domains: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.prefer_sites = domains.into_iter().map(Into::into).collect();
        self
    }
}

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct WebResult {
    /// Result URL.
    pub url: String,
    /// Title.
    pub title: String,
    /// Highlighted snippet.
    pub snippet: String,
    /// Site domain.
    pub domain: String,
    /// Final blended score.
    pub score: f32,
    /// Image source URL (image vertical only).
    pub image_src: Option<String>,
    /// Video duration (video vertical only).
    pub duration_s: Option<u32>,
    /// Publication date, epoch seconds (news vertical only).
    pub date: Option<i64>,
}

/// One candidate in a shard's scatter-gather pool: the fully blended
/// result plus the two keys that drive the rank-safe merge — the raw
/// BM25 relevance score (comparable across shards once corpus-wide
/// statistics are folded) and the global page index (the canonical
/// tie-break, equal to single-index doc order under strided
/// partitioning).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolEntry {
    /// Global corpus page index.
    pub page: usize,
    /// Raw BM25 score from the vertical index, before blending.
    pub raw: f32,
    /// The blended, snippet-carrying result.
    pub result: WebResult,
}

/// One shard's candidate pool for a query, ordered (raw desc, page
/// asc), plus the shard searcher's final MaxScore threshold: every
/// document the shard did *not* return scores at or below `bound`,
/// which the gather side uses as a merge bound to certify that
/// truncating the merged pool is rank-safe.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPool {
    /// Pool entries, best first.
    pub entries: Vec<PoolEntry>,
    /// MaxScore threshold exported by the shard's searcher
    /// (`NEG_INFINITY` when the pool came back short — the shard is
    /// exhausted and withholds nothing).
    pub bound: f32,
}

impl Default for ShardPool {
    fn default() -> Self {
        ShardPool {
            entries: Vec::new(),
            bound: f32::NEG_INFINITY,
        }
    }
}

struct VerticalIndex {
    index: Index,
    /// Doc id -> page index.
    pages: Vec<usize>,
    /// Page index -> live doc id (reverse of `pages`, minus tombstones).
    doc_by_page: HashMap<usize, DocId>,
}

impl VerticalIndex {
    /// Index a page incrementally; a page already present (re-crawl)
    /// is refreshed via [`Index::update`] — tombstone plus re-add — so
    /// the vertical never rebuilds.
    fn add_page(&mut self, page_idx: usize, doc: Doc) {
        let id = match self.doc_by_page.get(&page_idx) {
            Some(&old) => self
                .index
                .update(old, doc)
                .expect("doc_by_page only maps live doc ids"),
            None => self.index.add(doc),
        };
        debug_assert_eq!(id.as_usize(), self.pages.len());
        self.pages.push(page_idx);
        self.doc_by_page.insert(page_idx, id);
    }

    /// Tombstone a page's document (no-op when absent).
    fn remove_page(&mut self, page_idx: usize) -> bool {
        match self.doc_by_page.remove(&page_idx) {
            Some(doc) => self.index.delete(doc),
            None => false,
        }
    }
}

/// The search engine over one corpus.
pub struct SearchEngine {
    corpus: Corpus,
    rank: Vec<f64>,
    web: VerticalIndex,
    image: VerticalIndex,
    video: VerticalIndex,
    news: VerticalIndex,
    /// Query-conditioned score multipliers learned from community
    /// click logs (paper §IV: application usage data "may eventually
    /// provide topic- or community-specific relevance signals to the
    /// general search engine"). Keyed by normalized query, then URL, so
    /// a URL popular for one query never distorts another — and so one
    /// query's boosts can be looked up per hit by borrowed URL without
    /// building an owned `(query, url)` key.
    click_boosts: HashMap<String, HashMap<String, f32>>,
    speller: SpellSuggester,
    /// Corpus-wide scoring statistics, one per vertical, set when this
    /// engine is a document-partitioned shard of a larger corpus (see
    /// [`SearchEngine::build_cluster`]). Shard searches then score
    /// with union df / live-doc / average-length values and stay
    /// bit-identical to a single-index build.
    global: Option<Arc<[GlobalScoreStats; 4]>>,
}

impl std::fmt::Debug for SearchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchEngine")
            .field("pages", &self.corpus.pages.len())
            .field("web_docs", &self.web.pages.len())
            .finish_non_exhaustive()
    }
}

/// Field ids shared by every vertical index; `build_vertical` registers
/// title first and body second, so the ids are fixed and the routing
/// pass can construct documents before any index exists.
const TITLE_FIELD: FieldId = FieldId(0);
const BODY_FIELD: FieldId = FieldId(1);

/// One vertical's slice of the corpus: the documents to index plus the
/// doc-id -> page-index mapping, produced by [`route_pages`].
#[derive(Default)]
struct VerticalDocs {
    docs: Vec<Doc>,
    pages: Vec<usize>,
}

/// Single pass over the corpus routing each page to its vertical
/// (replacing four full-corpus filter passes).
fn route_pages(corpus: &Corpus) -> [VerticalDocs; 4] {
    let mut routed: [VerticalDocs; 4] = Default::default();
    for (i, page) in corpus.pages.iter().enumerate() {
        let v = Vertical::of_kind(&page.kind) as usize;
        routed[v].docs.push(page_doc(page));
        routed[v].pages.push(i);
    }
    routed
}

/// Project a page into an index document (shared by bulk build and
/// live ingest, so both paths index identically).
fn page_doc(page: &Page) -> Doc {
    Doc::new()
        .field(TITLE_FIELD, &*page.title)
        .field(BODY_FIELD, &*page.body)
}

fn build_vertical(docs: VerticalDocs, threads: usize) -> VerticalIndex {
    let mut index = Index::new(IndexConfig::default());
    let title = index.register_field("title", 2.0);
    let body = index.register_field("body", 1.0);
    debug_assert_eq!((title, body), (TITLE_FIELD, BODY_FIELD));
    let ids = index.build_parallel(docs.docs, threads);
    index.optimize();
    let doc_by_page = docs
        .pages
        .iter()
        .zip(ids)
        .map(|(&page, id)| (page, id))
        .collect();
    VerticalIndex {
        index,
        pages: docs.pages,
        doc_by_page,
    }
}

impl SearchEngine {
    /// Index a corpus (builds all four verticals and the static rank),
    /// using up to [`symphony_text::default_build_threads`] workers.
    pub fn new(corpus: Corpus) -> SearchEngine {
        Self::with_build_threads(corpus, symphony_text::default_build_threads())
    }

    /// Index a corpus with an explicit build-parallelism budget.
    ///
    /// With `threads <= 1` everything runs sequentially on the calling
    /// thread (the cold-start baseline). Otherwise the four verticals
    /// build concurrently on scoped threads — each splitting its
    /// documents across segment builders — while the static-rank power
    /// iteration runs on the calling thread and the spell suggester is
    /// derived as soon as the web vertical lands. The resulting indexes
    /// are bit-identical to a sequential build (see
    /// `Index::build_parallel`).
    pub fn with_build_threads(corpus: Corpus, threads: usize) -> SearchEngine {
        let [web_d, image_d, video_d, news_d] = route_pages(&corpus);
        let (rank, web, image, video, news, speller) = if threads <= 1 {
            let rank = static_rank(&corpus, 30);
            let web = build_vertical(web_d, 1);
            let image = build_vertical(image_d, 1);
            let video = build_vertical(video_d, 1);
            let news = build_vertical(news_d, 1);
            let speller = SpellSuggester::from_index(&web.index);
            (rank, web, image, video, news, speller)
        } else {
            // Two layers of parallelism: one scoped thread per vertical,
            // each splitting its docs across `inner` segment builders.
            let inner = (threads / 2).max(1);
            std::thread::scope(|s| {
                let web_h = s.spawn(move || build_vertical(web_d, inner));
                let image_h = s.spawn(move || build_vertical(image_d, inner));
                let video_h = s.spawn(move || build_vertical(video_d, inner));
                let news_h = s.spawn(move || build_vertical(news_d, inner));
                // Static rank overlaps with the vertical builds.
                let rank = static_rank(&corpus, 30);
                let web = web_h.join().expect("web vertical build panicked");
                // The speller only needs the web lexicon; build it while
                // the remaining verticals finish.
                let speller = SpellSuggester::from_index(&web.index);
                let image = image_h.join().expect("image vertical build panicked");
                let video = video_h.join().expect("video vertical build panicked");
                let news = news_h.join().expect("news vertical build panicked");
                (rank, web, image, video, news, speller)
            })
        };
        SearchEngine {
            corpus,
            rank,
            web,
            image,
            video,
            news,
            click_boosts: HashMap::new(),
            speller,
            global: None,
        }
    }

    /// Build `num_shards` document-partitioned engines over one
    /// corpus: shard `s` indexes the pages with `page_idx % num_shards
    /// == s` (strided, so every shard's vertical doc order follows the
    /// global page order), while every shard keeps the full page table
    /// and the full static rank. After the per-shard builds, scoring
    /// statistics are folded across shards per vertical and attached
    /// to each engine, so shard-local searches score exactly as one
    /// index over the whole corpus would — the foundation of the
    /// rank-safe scatter-gather merge ([`SearchEngine::merge_pools`]).
    pub fn build_cluster(corpus: &Corpus, num_shards: usize, threads: usize) -> Vec<SearchEngine> {
        assert!(num_shards > 0, "cluster needs at least one shard");
        let rank = static_rank(corpus, 30);
        let mut shards: Vec<SearchEngine> = (0..num_shards)
            .map(|s| {
                let mut routed = route_pages(corpus);
                for vd in routed.iter_mut() {
                    let docs = std::mem::take(&mut vd.docs);
                    let pages = std::mem::take(&mut vd.pages);
                    (vd.docs, vd.pages) = docs
                        .into_iter()
                        .zip(pages)
                        .filter(|&(_, p)| p % num_shards == s)
                        .unzip();
                }
                let [web_d, image_d, video_d, news_d] = routed;
                let web = build_vertical(web_d, threads);
                let image = build_vertical(image_d, threads);
                let video = build_vertical(video_d, threads);
                let news = build_vertical(news_d, threads);
                let speller = SpellSuggester::from_index(&web.index);
                SearchEngine {
                    corpus: corpus.clone(),
                    rank: rank.clone(),
                    web,
                    image,
                    video,
                    news,
                    click_boosts: HashMap::new(),
                    speller,
                    global: None,
                }
            })
            .collect();
        let global = Arc::new([
            GlobalScoreStats::fold(shards.iter().map(|e| &e.web.index)),
            GlobalScoreStats::fold(shards.iter().map(|e| &e.image.index)),
            GlobalScoreStats::fold(shards.iter().map(|e| &e.video.index)),
            GlobalScoreStats::fold(shards.iter().map(|e| &e.news.index)),
        ]);
        for e in &mut shards {
            e.global = Some(Arc::clone(&global));
        }
        shards
    }

    /// "Did you mean": a corrected query when tokens look misspelled
    /// relative to the web vertical's lexicon, else `None`.
    pub fn did_you_mean(&self, raw_query: &str) -> Option<String> {
        self.speller
            .did_you_mean(raw_query, self.web.index.analyzer())
    }

    /// Learn query-conditioned relevance boosts from community click
    /// logs (the paper's §IV feedback loop). Within each normalized
    /// query, a URL clicked `c` times gets a multiplier
    /// `1 + strength * ln(1 + c) / ln(1 + max_c)`, so that query's
    /// most-clicked URL gains exactly `1 + strength` and others scale
    /// logarithmically below it. Calling this again replaces the
    /// previous signal.
    pub fn apply_click_feedback(&mut self, logs: &[LogEntry], strength: f32) {
        self.click_boosts.clear();
        if strength <= 0.0 {
            return;
        }
        // (query, url) -> clicks, plus per-query maxima.
        let mut counts: HashMap<(String, String), u32> = HashMap::new();
        for l in logs {
            *counts
                .entry((normalize_query(&l.query), l.url.clone()))
                .or_insert(0) += 1;
        }
        let mut max_per_query: HashMap<String, u32> = HashMap::new();
        for ((q, _), c) in &counts {
            let m = max_per_query.entry(q.clone()).or_insert(0);
            *m = (*m).max(*c);
        }
        for ((q, url), c) in counts {
            let max = max_per_query[&q];
            let denom = (1.0 + max as f32).ln();
            let boost = 1.0 + strength * (1.0 + c as f32).ln() / denom;
            self.click_boosts.entry(q).or_default().insert(url, boost);
        }
    }

    /// Number of `(query, url)` pairs carrying a click-feedback boost.
    pub fn click_boosted_urls(&self) -> usize {
        self.click_boosts.values().map(|urls| urls.len()).sum()
    }

    /// The corpus behind the engine.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    fn vertical(&self, v: Vertical) -> &VerticalIndex {
        match v {
            Vertical::Web => &self.web,
            Vertical::Image => &self.image,
            Vertical::Video => &self.video,
            Vertical::News => &self.news,
        }
    }

    fn vertical_mut(&mut self, v: Vertical) -> &mut VerticalIndex {
        match v {
            Vertical::Web => &mut self.web,
            Vertical::Image => &mut self.image,
            Vertical::Video => &mut self.video,
            Vertical::News => &mut self.news,
        }
    }

    /// Ingest a crawled page without rebuilding any vertical: a new URL
    /// is appended to the corpus and indexed into its vertical's
    /// memtable; a known URL is replaced in place (tombstone + re-add,
    /// switching verticals when its object kind changed). Returns the
    /// vertical that now serves the page.
    ///
    /// New pages receive the corpus-mean static rank as a provisional
    /// score until [`recompute_static_rank`](Self::recompute_static_rank)
    /// folds them into the link graph.
    pub fn ingest_page(&mut self, page: Page) -> Vertical {
        let vertical = Vertical::of_kind(&page.kind);
        match self.corpus.page_index_by_url(&page.url) {
            Some(idx) => {
                let old = Vertical::of_kind(&self.corpus.pages[idx].kind);
                if old != vertical {
                    self.vertical_mut(old).remove_page(idx);
                }
                let doc = page_doc(&page);
                self.corpus.pages[idx] = page;
                self.vertical_mut(vertical).add_page(idx, doc);
            }
            None => {
                let idx = self.corpus.push_page(page);
                let mean = match self.rank.len() {
                    0 => 0.0,
                    n => self.rank.iter().sum::<f64>() / n as f64,
                };
                self.rank.push(mean);
                let doc = page_doc(&self.corpus.pages[idx]);
                self.vertical_mut(vertical).add_page(idx, doc);
            }
        }
        vertical
    }

    /// Drop a URL from search (tombstone; the posting data is purged by
    /// a later merge). Returns `false` for unknown or already-removed
    /// URLs. The corpus keeps the page record so existing page indexes
    /// stay stable.
    pub fn remove_page(&mut self, url: &str) -> bool {
        let Some(idx) = self.corpus.page_index_by_url(url) else {
            return false;
        };
        let v = Vertical::of_kind(&self.corpus.pages[idx].kind);
        self.vertical_mut(v).remove_page(idx)
    }

    /// One maintenance tick over all four verticals: each seals its
    /// memtable when over the policy's size cap or staleness window and
    /// runs at most one background merge. When the web vertical did
    /// anything, the spell suggester is re-snapshotted so corrections
    /// track the live lexicon (freshly sealed terms become suggestible,
    /// purged terms stop suggesting). Deterministic for a fixed
    /// schedule of calls; hosting drives it on the virtual clock.
    pub fn maintain(&mut self, now_ms: u64) -> MaintenanceReport {
        let mut total = MaintenanceReport::default();
        for v in Vertical::ALL {
            let r = self.vertical_mut(v).index.maintain(now_ms);
            total.sealed |= r.sealed;
            total.merged_segments += r.merged_segments;
            total.purged_docs += r.purged_docs;
            if v == Vertical::Web && r.did_work() {
                self.speller = SpellSuggester::from_index(&self.web.index);
            }
        }
        total
    }

    /// Apply a segment-lifecycle policy to every vertical index.
    pub fn set_segment_policy(&mut self, policy: SegmentPolicy) {
        for v in Vertical::ALL {
            self.vertical_mut(v).index.set_policy(policy);
        }
    }

    /// Re-run the static-rank power iteration over the current corpus,
    /// replacing the provisional ranks that live-ingested pages carry.
    pub fn recompute_static_rank(&mut self) {
        self.rank = static_rank(&self.corpus, 30);
    }

    /// Search a vertical. `raw_query` uses the
    /// [`symphony_text::Query`] syntax; `config` applies the
    /// customization hooks; at most `k` results return, best first.
    ///
    /// Implemented as the one-shard special case of the scatter-gather
    /// pipeline: one candidate pool, merged and ranked by
    /// [`SearchEngine::merge_pools`].
    pub fn search(
        &self,
        vertical: Vertical,
        raw_query: &str,
        config: &SearchConfig,
        k: usize,
    ) -> Vec<WebResult> {
        Self::merge_pools(vec![self.search_pool(vertical, raw_query, config, k)], k)
    }

    /// Depth of the relevance candidate pool for a final page of `k`
    /// results. Over-fetch: static-rank blending can reorder beyond
    /// position k, so rescoring pulls a deeper pool.
    fn pool_depth(k: usize) -> usize {
        (k * 4).max(32)
    }

    /// Produce this engine's candidate pool for one query: the top
    /// [`pool_depth`](Self::pool_depth) relevance hits, rescored with
    /// static rank / click / preference / recency blending, each
    /// carrying its raw BM25 score and global page index, plus the
    /// relevance searcher's MaxScore threshold as the shard's merge
    /// bound. On a shard built by [`SearchEngine::build_cluster`] the
    /// raw scores are computed under folded corpus-wide statistics, so
    /// pools from different shards are directly comparable — merging
    /// them reproduces the single-index pool exactly.
    pub fn search_pool(
        &self,
        vertical: Vertical,
        raw_query: &str,
        config: &SearchConfig,
        k: usize,
    ) -> ShardPool {
        let mut query = Query::parse(raw_query);
        for t in &config.augment_terms {
            query.clauses.push(Clause {
                occur: Occur::Should,
                kind: ClauseKind::Term(t.clone()),
                field: None,
            });
        }
        if query.is_empty() || k == 0 {
            return ShardPool::default();
        }
        let vi = self.vertical(vertical);
        let pool = Self::pool_depth(k);
        let restrict = &config.site_restrict;
        let mut searcher = Searcher::new(&vi.index);
        if let Some(global) = &self.global {
            searcher = searcher.with_global_stats(&global[vertical as usize]);
        }
        let (hits, bound) = searcher.search_filtered_with_threshold(&query, pool, |doc| {
            if restrict.is_empty() {
                return true;
            }
            let domain = self.corpus.domain(vi.pages[doc.as_usize()]);
            restrict.iter().any(|allow| domain_matches(domain, allow))
        });

        let newest = NEWS_SPAN_HINT;
        // Resolve this query's boost table once; per-hit lookups then
        // borrow the URL instead of building an owned key.
        let per_query_boosts = if self.click_boosts.is_empty() {
            None
        } else {
            self.click_boosts.get(&normalize_query(raw_query))
        };
        // One snippet generator for the whole result page: construction
        // analyzes the query terms, which is identical for every hit.
        let snippeter = SnippetGenerator::new(vi.index.analyzer(), &query.positive_words());
        let entries: Vec<PoolEntry> = hits
            .into_iter()
            .map(|h| {
                let page_idx = vi.pages[h.doc.as_usize()];
                let page = &self.corpus.pages[page_idx];
                let domain = self.corpus.domain(page_idx).to_string();
                let mut score = h.score * (0.4 + 1.6 * self.rank[page_idx] as f32);
                if let Some(boosts) = per_query_boosts {
                    if let Some(boost) = boosts.get(page.url.as_str()) {
                        score *= boost;
                    }
                }
                if config
                    .prefer_sites
                    .iter()
                    .any(|p| domain_matches(&domain, p))
                {
                    score *= PREFER_BOOST;
                }
                let (image_src, duration_s, date) = match &page.kind {
                    PageKind::Image { src, .. } => (Some(src.clone()), None, None),
                    PageKind::Video { duration_s } => (None, Some(*duration_s), None),
                    PageKind::News { date } => {
                        // Recency boost for news.
                        let rec = (*date as f32 / newest).clamp(0.0, 1.0);
                        score *= 0.8 + 0.4 * rec;
                        (None, None, Some(*date))
                    }
                    _ => (None, None, None),
                };
                PoolEntry {
                    page: page_idx,
                    raw: h.score,
                    result: WebResult {
                        url: page.url.clone(),
                        title: page.title.clone(),
                        snippet: snippeter.snippet(&page.body),
                        domain,
                        score,
                        image_src,
                        duration_s,
                        date,
                    },
                }
            })
            .collect();
        // The searcher returns (score desc, doc asc); strided
        // partitioning keeps local doc order aligned with global page
        // order, so entries are already in (raw desc, page asc) — the
        // canonical merge order.
        debug_assert!(entries
            .windows(2)
            .all(|w| w[1].raw < w[0].raw || (w[1].raw == w[0].raw && w[0].page < w[1].page)));
        ShardPool { entries, bound }
    }

    /// Rank-safe gather: merge per-shard candidate pools into the
    /// final top-`k` result page.
    ///
    /// Exactness argument (DESIGN.md "Distributed serving" has the
    /// full sketch): the shards partition the documents, and every
    /// member of the single-index pool ranks at least as high within
    /// its own shard as globally, so the union of per-shard pools is a
    /// superset of the single-index pool; truncating the union under
    /// the same canonical total order (raw BM25 desc, global page asc
    /// — page order *is* doc order under strided partitioning)
    /// therefore selects exactly the single-index pool, and rescoring
    /// is a pure per-(page, query) function, so the final (score desc,
    /// url asc) page is bit-identical. Each shard's exported MaxScore
    /// bound certifies the truncation: any document a shard withheld
    /// scores at or below its bound, and a debug assertion checks no
    /// withheld document could have displaced the merged cutoff.
    pub fn merge_pools(pools: Vec<ShardPool>, k: usize) -> Vec<WebResult> {
        let depth = Self::pool_depth(k);
        let mut merged: Vec<PoolEntry> =
            Vec::with_capacity(pools.iter().map(|p| p.entries.len()).sum());
        let mut bounds: Vec<(f32, usize)> = Vec::with_capacity(pools.len());
        for pool in pools {
            // A shard whose pool came back full may be withholding
            // docs scoring up to its bound; remember it for the
            // rank-safety certificate below.
            if pool.entries.len() >= depth {
                bounds.push((pool.bound, pool.entries.len()));
            }
            merged.extend(pool.entries);
        }
        merged.sort_by(|a, b| b.raw.total_cmp(&a.raw).then(a.page.cmp(&b.page)));
        merged.truncate(depth);
        if let Some(cutoff) = merged.last() {
            // Merge-bound certificate: every truncated shard's bound
            // must sit at or below the merged cutoff, i.e. nothing a
            // shard withheld could have entered the merged pool.
            debug_assert!(
                merged.len() < depth || bounds.iter().all(|&(b, _)| b <= cutoff.raw),
                "shard bound exceeds merged cutoff: rank safety violated"
            );
        }
        let mut results: Vec<WebResult> = merged.into_iter().map(|e| e.result).collect();
        results.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.url.cmp(&b.url)));
        results.truncate(k);
        results
    }

    /// Number of live (searchable) documents in a vertical.
    pub fn doc_count(&self, vertical: Vertical) -> usize {
        self.vertical(vertical).index.live_docs()
    }

    /// Static rank of a URL, when known (exposed for experiments).
    pub fn static_rank_of(&self, url: &str) -> Option<f64> {
        let idx = self.corpus.page_index_by_url(url)?;
        Some(self.rank[idx])
    }
}

/// Rough upper bound on synthetic news timestamps, for recency
/// normalization (2010-01-01).
const NEWS_SPAN_HINT: f32 = 1_262_304_000.0;

/// Preferred-site score multiplier.
const PREFER_BOOST: f32 = 1.5;

/// Whitespace/case normalization for click-feedback keys.
fn normalize_query(q: &str) -> String {
    q.split_whitespace()
        .map(|w| w.to_lowercase())
        .collect::<Vec<_>>()
        .join(" ")
}

/// `domain` equals `allow` or is a subdomain of it.
pub fn domain_matches(domain: &str, allow: &str) -> bool {
    domain == allow || domain.ends_with(&format!(".{allow}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use crate::topic::Topic;

    fn engine() -> SearchEngine {
        let cfg = CorpusConfig {
            sites_per_topic: 3,
            pages_per_site: 6,
            ..CorpusConfig::default()
        }
        .with_entities(Topic::Games, ["Galactic Raiders", "Farm Story"]);
        SearchEngine::new(Corpus::generate(&cfg))
    }

    #[test]
    fn web_search_finds_reviews() {
        let e = engine();
        let rs = e.search(
            Vertical::Web,
            "Galactic Raiders review",
            &SearchConfig::default(),
            10,
        );
        assert!(!rs.is_empty());
        assert!(
            rs[0].title.contains("Galactic Raiders"),
            "{:?}",
            rs[0].title
        );
        assert!(rs[0].snippet.contains("<b>"));
    }

    #[test]
    fn site_restriction_filters_domains() {
        let e = engine();
        let cfg = SearchConfig::default().restrict_to(["gamespot.com", "ign.com"]);
        let rs = e.search(Vertical::Web, "Galactic Raiders", &cfg, 10);
        assert!(!rs.is_empty());
        assert!(rs
            .iter()
            .all(|r| r.domain == "gamespot.com" || r.domain == "ign.com"));
    }

    #[test]
    fn restriction_to_unknown_domain_is_empty() {
        let e = engine();
        let cfg = SearchConfig::default().restrict_to(["nosuchsite.example"]);
        assert!(e.search(Vertical::Web, "game", &cfg, 10).is_empty());
    }

    #[test]
    fn image_vertical_returns_media_meta() {
        let e = engine();
        let rs = e.search(
            Vertical::Image,
            "Galactic Raiders",
            &SearchConfig::default(),
            5,
        );
        assert!(!rs.is_empty());
        assert!(rs[0].image_src.as_deref().unwrap().ends_with(".jpg"));
        assert!(rs[0].duration_s.is_none());
    }

    #[test]
    fn video_vertical_returns_duration() {
        let e = engine();
        let rs = e.search(
            Vertical::Video,
            "Galactic Raiders trailer",
            &SearchConfig::default(),
            5,
        );
        assert!(!rs.is_empty());
        assert!(rs[0].duration_s.is_some());
    }

    #[test]
    fn news_vertical_returns_dates() {
        let e = engine();
        let rs = e.search(
            Vertical::News,
            "Galactic Raiders",
            &SearchConfig::default(),
            5,
        );
        assert!(!rs.is_empty());
        assert!(rs[0].date.is_some());
    }

    #[test]
    fn prefer_sites_boosts_ranking() {
        let e = engine();
        let neutral = e.search(Vertical::Web, "game review", &SearchConfig::default(), 20);
        let preferred_domain = "teamxbox.com";
        let boosted = e.search(
            Vertical::Web,
            "game review",
            &SearchConfig::default().prefer([preferred_domain]),
            20,
        );
        let pos = |rs: &[WebResult]| rs.iter().position(|r| r.domain == preferred_domain);
        if let (Some(a), Some(b)) = (pos(&neutral), pos(&boosted)) {
            assert!(b <= a, "boost must not demote ({a} -> {b})");
        }
    }

    #[test]
    fn augmentation_changes_results() {
        let e = engine();
        let plain = e.search(Vertical::Web, "review", &SearchConfig::default(), 10);
        let aug = e.search(
            Vertical::Web,
            "review",
            &SearchConfig::default().augment(["gameplay"]),
            10,
        );
        assert!(!plain.is_empty() && !aug.is_empty());
        let urls = |rs: &[WebResult]| rs.iter().map(|r| r.url.clone()).collect::<Vec<_>>();
        assert_ne!(urls(&plain), urls(&aug));
    }

    #[test]
    fn empty_query_is_empty() {
        let e = engine();
        assert!(e
            .search(Vertical::Web, "", &SearchConfig::default(), 10)
            .is_empty());
    }

    #[test]
    fn k_truncates() {
        let e = engine();
        let rs = e.search(Vertical::Web, "game", &SearchConfig::default(), 3);
        assert!(rs.len() <= 3);
    }

    #[test]
    fn results_sorted_by_score() {
        let e = engine();
        let rs = e.search(Vertical::Web, "game review", &SearchConfig::default(), 10);
        for w in rs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn did_you_mean_corrects_entity_typos() {
        let e = engine();
        let dym = e.did_you_mean("galactik raiders reviw");
        assert_eq!(dym.as_deref(), Some("galactic raider review"));
        assert_eq!(e.did_you_mean("galactic raiders"), None);
    }

    #[test]
    fn click_feedback_promotes_clicked_urls() {
        let mut e = engine();
        let baseline = e.search(Vertical::Web, "game review", &SearchConfig::default(), 10);
        assert!(baseline.len() >= 2);
        // Fake a community that always clicks the currently-second
        // result.
        let target = baseline[1].url.clone();
        let logs: Vec<crate::logs::LogEntry> = (0..50)
            .map(|i| crate::logs::LogEntry {
                session: i,
                query: "game review".into(),
                url: target.clone(),
                domain: baseline[1].domain.clone(),
                position: 1,
                timestamp: 0,
            })
            .collect();
        e.apply_click_feedback(&logs, 1.0);
        assert_eq!(e.click_boosted_urls(), 1);
        let boosted = e.search(Vertical::Web, "game review", &SearchConfig::default(), 10);
        let pos = |rs: &[WebResult], url: &str| rs.iter().position(|r| r.url == url);
        assert!(
            pos(&boosted, &target).unwrap() < pos(&baseline, &target).unwrap()
                || pos(&boosted, &target) == Some(0),
            "clicked URL must rise"
        );
    }

    #[test]
    fn click_feedback_clears_on_empty_logs() {
        let mut e = engine();
        let logs = vec![crate::logs::LogEntry {
            session: 0,
            query: "q".into(),
            url: "http://x/y".into(),
            domain: "x".into(),
            position: 0,
            timestamp: 0,
        }];
        e.apply_click_feedback(&logs, 1.0);
        assert_eq!(e.click_boosted_urls(), 1);
        e.apply_click_feedback(&[], 1.0);
        assert_eq!(e.click_boosted_urls(), 0);
    }

    fn crawled_page(e: &SearchEngine, url: &str, title: &str, body: &str) -> Page {
        Page {
            site: 0,
            url: format!("http://{}/{}", e.corpus().sites[0].domain, url),
            title: title.into(),
            body: body.into(),
            links: Vec::new(),
            kind: PageKind::Article,
        }
    }

    #[test]
    fn ingest_makes_new_page_searchable_without_rebuild() {
        let mut e = engine();
        let before = e.doc_count(Vertical::Web);
        let p = crawled_page(&e, "zyx", "Zyxwvut Chronicle", "a zyxwvut adventure story");
        let url = p.url.clone();
        assert_eq!(e.ingest_page(p), Vertical::Web);
        assert_eq!(e.doc_count(Vertical::Web), before + 1);
        let rs = e.search(Vertical::Web, "zyxwvut", &SearchConfig::default(), 5);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].url, url);
        assert!(e.static_rank_of(&url).unwrap() > 0.0, "provisional rank");
    }

    #[test]
    fn reingest_replaces_page_in_place() {
        let mut e = engine();
        let p = crawled_page(&e, "zyx", "Zyxwvut Chronicle", "original body");
        let url = p.url.clone();
        e.ingest_page(p);
        let before = e.doc_count(Vertical::Web);
        let mut p2 = crawled_page(&e, "zyx", "Zyxwvut Chronicle", "rewritten qqzzy body");
        p2.url = url.clone();
        e.ingest_page(p2);
        assert_eq!(e.doc_count(Vertical::Web), before, "replaced, not added");
        assert!(e
            .search(Vertical::Web, "original", &SearchConfig::default(), 5)
            .is_empty());
        let rs = e.search(Vertical::Web, "qqzzy", &SearchConfig::default(), 5);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].url, url);
    }

    #[test]
    fn remove_page_hides_url() {
        let mut e = engine();
        let p = crawled_page(&e, "zyx", "Zyxwvut Chronicle", "a zyxwvut story");
        let url = p.url.clone();
        e.ingest_page(p);
        assert!(e.remove_page(&url));
        assert!(!e.remove_page(&url), "second remove is a no-op");
        assert!(!e.remove_page("http://nosuch.example/x"));
        assert!(e
            .search(Vertical::Web, "zyxwvut", &SearchConfig::default(), 5)
            .is_empty());
    }

    #[test]
    fn maintain_seals_ingested_pages_and_refreshes_speller() {
        let mut e = engine();
        e.set_segment_policy(SegmentPolicy {
            memtable_max_docs: 4096,
            staleness_window_ms: 50,
            merge_fanin: 4,
            near_real_time: false,
        });
        assert_eq!(
            e.did_you_mean("zyxwvuq"),
            None,
            "unknown term, nothing close"
        );
        let p = crawled_page(&e, "zyx", "Zyxwvut Chronicle", "a zyxwvut story");
        e.ingest_page(p);
        let r = e.maintain(100);
        assert!(r.sealed, "staleness window elapsed");
        // The web vertical did work, so the speller was re-snapshotted
        // and now knows the freshly indexed term.
        assert_eq!(e.did_you_mean("zyxwvuq").as_deref(), Some("zyxwvut"));
        // Results are unchanged by sealing.
        let rs = e.search(Vertical::Web, "zyxwvut", &SearchConfig::default(), 5);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn kind_change_moves_page_between_verticals() {
        let mut e = engine();
        let p = crawled_page(&e, "zyx", "Zyxwvut Trailer", "zyxwvut gameplay footage");
        let url = p.url.clone();
        e.ingest_page(p);
        let mut v = crawled_page(&e, "zyx", "Zyxwvut Trailer", "zyxwvut gameplay footage");
        v.url = url.clone();
        v.kind = PageKind::Video { duration_s: 120 };
        assert_eq!(e.ingest_page(v), Vertical::Video);
        assert!(e
            .search(Vertical::Web, "zyxwvut", &SearchConfig::default(), 5)
            .is_empty());
        let rs = e.search(Vertical::Video, "zyxwvut", &SearchConfig::default(), 5);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].duration_s, Some(120));
    }

    #[test]
    fn domain_matching_rules() {
        assert!(domain_matches("gamespot.com", "gamespot.com"));
        assert!(domain_matches("www.gamespot.com", "gamespot.com"));
        assert!(!domain_matches("notgamespot.com", "gamespot.com"));
    }

    fn result_bits(rs: &[WebResult]) -> Vec<(String, u32)> {
        rs.iter()
            .map(|r| (r.url.clone(), r.score.to_bits()))
            .collect()
    }

    #[test]
    fn cluster_merge_is_bit_identical_to_single_engine() {
        let cfg = CorpusConfig {
            sites_per_topic: 3,
            pages_per_site: 6,
            ..CorpusConfig::default()
        }
        .with_entities(Topic::Games, ["Galactic Raiders", "Farm Story"]);
        let corpus = Corpus::generate(&cfg);
        let single = SearchEngine::new(corpus.clone());
        let configs = [
            SearchConfig::default(),
            SearchConfig::default().restrict_to(["gamespot.com", "ign.com"]),
            SearchConfig::default()
                .augment(["review"])
                .prefer(["ign.com"]),
        ];
        for n in [1usize, 2, 3, 5] {
            let shards = SearchEngine::build_cluster(&corpus, n, 1);
            for v in Vertical::ALL {
                for q in [
                    "Galactic Raiders",
                    "game review",
                    "+space farm",
                    "\"Farm Story\"",
                ] {
                    for (ci, config) in configs.iter().enumerate() {
                        for k in [3usize, 10] {
                            let want = single.search(v, q, config, k);
                            let pools = shards
                                .iter()
                                .map(|e| e.search_pool(v, q, config, k))
                                .collect();
                            let got = SearchEngine::merge_pools(pools, k);
                            assert_eq!(
                                result_bits(&want),
                                result_bits(&got),
                                "vertical {v:?} query {q:?} config {ci} k {k} shards {n}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shard_pool_exports_threshold_bound() {
        let cfg = CorpusConfig {
            sites_per_topic: 4,
            pages_per_site: 8,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let e = SearchEngine::new(corpus);
        // k=1 → pool depth 32; a broad query fills the pool and the
        // bound equals the last raw score; a narrow one leaves it
        // short with an unbounded (NEG_INFINITY) certificate.
        let pool = e.search_pool(Vertical::Web, "game", &SearchConfig::default(), 1);
        if pool.entries.len() >= 32 {
            assert_eq!(pool.bound, pool.entries.last().unwrap().raw);
        } else {
            assert_eq!(pool.bound, f32::NEG_INFINITY);
        }
    }
}
