//! Property tests for the simulated web: restriction soundness,
//! determinism, and log validity over arbitrary configurations.

use proptest::prelude::*;
use symphony_web::engine::domain_matches;
use symphony_web::{
    generate_logs, Corpus, CorpusConfig, LogConfig, SearchConfig, SearchEngine, Topic, Vertical,
};

fn small_engine(seed: u64) -> SearchEngine {
    SearchEngine::new(Corpus::generate(&CorpusConfig {
        seed,
        sites_per_topic: 2,
        pages_per_site: 3,
        ..CorpusConfig::default()
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Site restriction is sound: every result's domain matches an
    /// allowed domain, for any allowed subset of corpus domains.
    #[test]
    fn restriction_is_sound(
        seed in 0u64..50,
        pick in proptest::collection::vec(any::<prop::sample::Index>(), 1..4),
        query in "[a-z]{3,7}",
    ) {
        let engine = small_engine(seed);
        let domains: Vec<String> = engine
            .corpus()
            .sites
            .iter()
            .map(|s| s.domain.clone())
            .collect();
        let allowed: Vec<String> = pick
            .iter()
            .map(|i| domains[i.index(domains.len())].clone())
            .collect();
        let config = SearchConfig::default().restrict_to(allowed.clone());
        for v in Vertical::ALL {
            for r in engine.search(v, &query, &config, 10) {
                prop_assert!(
                    allowed.iter().any(|a| domain_matches(&r.domain, a)),
                    "{} leaked past {:?}",
                    r.domain,
                    allowed
                );
            }
        }
    }

    /// Search is deterministic: same engine, same query, same results.
    #[test]
    fn search_deterministic(seed in 0u64..30, query in "[a-z]{3,7}( [a-z]{3,7})?") {
        let engine = small_engine(seed);
        let a = engine.search(Vertical::Web, &query, &SearchConfig::default(), 10);
        let b = engine.search(Vertical::Web, &query, &SearchConfig::default(), 10);
        prop_assert_eq!(a, b);
    }

    /// Scores are sorted and finite for arbitrary queries.
    #[test]
    fn scores_sorted_and_finite(seed in 0u64..30, query in "\\PC{0,30}") {
        let engine = small_engine(seed);
        let rs = engine.search(Vertical::Web, &query, &SearchConfig::default(), 10);
        for w in rs.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for r in &rs {
            prop_assert!(r.score.is_finite() && r.score > 0.0);
        }
    }

    /// Generated logs reference real pages and in-range positions.
    #[test]
    fn logs_are_valid(seed in 0u64..20) {
        let engine = small_engine(3);
        let logs = generate_logs(
            &engine,
            &LogConfig {
                seed,
                sessions: 40,
                topics: vec![Topic::Games, Topic::Wine],
                ..LogConfig::default()
            },
        );
        for l in &logs {
            prop_assert!(engine.corpus().page_by_url(&l.url).is_some());
            prop_assert!(l.position < 10);
            prop_assert!(!l.query.is_empty());
        }
    }
}
