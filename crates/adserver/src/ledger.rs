//! Click billing and the revenue-share ledger.
//!
//! Paper §II-A, "Monetization": *"If the click is on an advertisement
//! from an integrated ad service, the application designers will
//! automatically be credited by that service for any ad-click
//! revenue."* Every billed click becomes a ledger entry splitting the
//! GSP price between the platform and the publisher (the application
//! designer).

use crate::auction::Placement;
use crate::model::CampaignId;
use parking_lot::RwLock;

/// One billed click.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Charged campaign.
    pub campaign: CampaignId,
    /// Publisher (application) credited.
    pub publisher: String,
    /// Full price charged, in cents.
    pub price_cents: u32,
    /// Publisher's share of the price, in cents.
    pub publisher_share_cents: u32,
}

/// Errors from billing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BillingError {
    /// The campaign id does not exist.
    UnknownCampaign(CampaignId),
    /// The campaign's remaining budget cannot cover the price.
    BudgetExhausted(CampaignId),
}

impl std::fmt::Display for BillingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BillingError::UnknownCampaign(c) => write!(f, "unknown campaign {}", c.0),
            BillingError::BudgetExhausted(c) => write!(f, "budget exhausted for campaign {}", c.0),
        }
    }
}

impl std::error::Error for BillingError {}

/// Append-only click ledger with aggregation helpers.
///
/// Entries live behind a [`RwLock`] so billing can run from the
/// platform's concurrent (`&self`) click path: [`Ledger::record`]
/// takes a short write lock, the aggregation helpers take read locks.
#[derive(Debug, Default)]
pub struct Ledger {
    entries: RwLock<Vec<LedgerEntry>>,
}

impl Ledger {
    /// Empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Record a billed click.
    pub fn record(&self, placement: &Placement, publisher: &str, rev_share: f64) -> LedgerEntry {
        let share = (placement.price_cents as f64 * rev_share).floor() as u32;
        let mut entries = self.entries.write();
        let entry = LedgerEntry {
            seq: entries.len() as u64,
            campaign: placement.campaign,
            publisher: publisher.to_string(),
            price_cents: placement.price_cents,
            publisher_share_cents: share,
        };
        entries.push(entry.clone());
        entry
    }

    /// Snapshot of all entries in order.
    pub fn entries(&self) -> Vec<LedgerEntry> {
        self.entries.read().clone()
    }

    /// Number of entries so far.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether no clicks have been billed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Total credited to a publisher, in cents.
    pub fn publisher_earnings_cents(&self, publisher: &str) -> u64 {
        self.entries
            .read()
            .iter()
            .filter(|e| e.publisher == publisher)
            .map(|e| e.publisher_share_cents as u64)
            .sum()
    }

    /// Total charged to a campaign, in cents.
    pub fn campaign_spend_cents(&self, campaign: CampaignId) -> u64 {
        self.entries
            .read()
            .iter()
            .filter(|e| e.campaign == campaign)
            .map(|e| e.price_cents as u64)
            .sum()
    }

    /// Platform's retained cut, in cents.
    pub fn platform_cut_cents(&self) -> u64 {
        self.entries
            .read()
            .iter()
            .map(|e| (e.price_cents - e.publisher_share_cents) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placement(price: u32) -> Placement {
        Placement {
            campaign: CampaignId(1),
            position: 0,
            price_cents: price,
            keyword: "game".into(),
            title: "t".into(),
            display_url: "d".into(),
            target_url: "u".into(),
            text: "x".into(),
        }
    }

    #[test]
    fn record_splits_revenue() {
        let l = Ledger::new();
        let e = l.record(&placement(100), "GamerQueen", 0.7);
        assert_eq!(e.price_cents, 100);
        assert_eq!(e.publisher_share_cents, 70);
        assert_eq!(l.publisher_earnings_cents("GamerQueen"), 70);
        assert_eq!(l.platform_cut_cents(), 30);
    }

    #[test]
    fn share_floors_fractional_cents() {
        let l = Ledger::new();
        l.record(&placement(99), "p", 0.5);
        assert_eq!(l.publisher_earnings_cents("p"), 49);
    }

    #[test]
    fn aggregations_filter_correctly() {
        let l = Ledger::new();
        l.record(&placement(100), "a", 0.7);
        l.record(&placement(50), "b", 0.7);
        l.record(&placement(30), "a", 0.7);
        assert_eq!(l.publisher_earnings_cents("a"), 70 + 21);
        assert_eq!(l.publisher_earnings_cents("b"), 35);
        assert_eq!(l.publisher_earnings_cents("c"), 0);
        assert_eq!(l.campaign_spend_cents(CampaignId(1)), 180);
        assert_eq!(l.entries().len(), 3);
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
    }

    #[test]
    fn sequence_numbers_monotone() {
        let l = Ledger::new();
        l.record(&placement(10), "p", 0.7);
        l.record(&placement(10), "p", 0.7);
        assert_eq!(l.entries()[0].seq, 0);
        assert_eq!(l.entries()[1].seq, 1);
    }

    #[test]
    fn concurrent_records_assign_unique_sequence_numbers() {
        let l = Ledger::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        l.record(&placement(10), "p", 0.7);
                    }
                });
            }
        });
        let mut seqs: Vec<u64> = l.entries().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..200).collect::<Vec<u64>>());
        assert_eq!(l.publisher_earnings_cents("p"), 200 * 7);
    }
}
