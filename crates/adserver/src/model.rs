//! Advertiser / campaign / keyword model.

/// Identifier of an advertiser account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdvertiserId(pub u32);

/// Identifier of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CampaignId(pub u32);

/// Keyword match type (the classic ad-platform trio).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchType {
    /// Query must equal the keyword (after normalization).
    Exact,
    /// Keyword words must appear contiguously, in order, in the query.
    Phrase,
    /// All keyword words must appear in the query, any order.
    Broad,
}

/// A bid on a keyword.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Keyword {
    /// Keyword text.
    pub text: String,
    /// Match type.
    pub match_type: MatchType,
    /// Bid in cents per click.
    pub bid_cents: u32,
}

impl Keyword {
    /// Convenience constructor.
    pub fn new(text: &str, match_type: MatchType, bid_cents: u32) -> Keyword {
        Keyword {
            text: text.to_string(),
            match_type,
            bid_cents,
        }
    }

    /// Does this keyword match the (raw) query?
    pub fn matches(&self, query: &str) -> bool {
        let q = normalize(query);
        let k = normalize(&self.text);
        if k.is_empty() || q.is_empty() {
            return false;
        }
        match self.match_type {
            MatchType::Exact => q == k,
            MatchType::Phrase => q.windows(k.len()).any(|w| w == k.as_slice()),
            MatchType::Broad => k.iter().all(|kw| q.contains(kw)),
        }
    }
}

/// Lowercased alphanumeric word list.
pub fn normalize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_string)
        .collect()
}

/// An advertisement creative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ad {
    /// Headline.
    pub title: String,
    /// Display URL (shown to the user).
    pub display_url: String,
    /// Click-through target.
    pub target_url: String,
    /// Body text.
    pub text: String,
}

/// A campaign: budgeted keywords + one creative.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Owning advertiser.
    pub advertiser: AdvertiserId,
    /// Campaign name.
    pub name: String,
    /// Daily budget in cents.
    pub daily_budget_cents: u32,
    /// Spend so far (reset by [`crate::AdServer::reset_day`]).
    pub spent_cents: u32,
    /// Keywords bid on.
    pub keywords: Vec<Keyword>,
    /// The creative served.
    pub ad: Ad,
    /// Quality score in `(0, 1]` (historic CTR proxy).
    pub quality: f64,
}

impl Campaign {
    /// Budget left today.
    pub fn remaining_cents(&self) -> u32 {
        self.daily_budget_cents.saturating_sub(self.spent_cents)
    }

    /// Best matching bid for a query, if any keyword matches.
    pub fn best_bid(&self, query: &str) -> Option<&Keyword> {
        self.keywords
            .iter()
            .filter(|k| k.matches(query))
            .max_by_key(|k| k.bid_cents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_splits_and_lowercases() {
        assert_eq!(normalize("Space-Shooter 2!"), vec!["space", "shooter", "2"]);
        assert!(normalize("  ").is_empty());
    }

    #[test]
    fn exact_match() {
        let k = Keyword::new("space shooter", MatchType::Exact, 50);
        assert!(k.matches("Space Shooter"));
        assert!(!k.matches("space shooter game"));
        assert!(!k.matches("space"));
    }

    #[test]
    fn phrase_match() {
        let k = Keyword::new("space shooter", MatchType::Phrase, 50);
        assert!(k.matches("best space shooter game"));
        assert!(!k.matches("space best shooter"));
    }

    #[test]
    fn broad_match() {
        let k = Keyword::new("space shooter", MatchType::Broad, 50);
        assert!(k.matches("shooter in space"));
        assert!(!k.matches("space game"));
    }

    #[test]
    fn empty_never_matches() {
        let k = Keyword::new("", MatchType::Broad, 50);
        assert!(!k.matches("anything"));
        let k2 = Keyword::new("x", MatchType::Broad, 50);
        assert!(!k2.matches(""));
    }

    #[test]
    fn best_bid_picks_highest_matching() {
        let c = Campaign {
            advertiser: AdvertiserId(0),
            name: "c".into(),
            daily_budget_cents: 1000,
            spent_cents: 0,
            keywords: vec![
                Keyword::new("game", MatchType::Broad, 10),
                Keyword::new("space game", MatchType::Broad, 40),
                Keyword::new("wine", MatchType::Broad, 99),
            ],
            ad: Ad {
                title: "t".into(),
                display_url: "d".into(),
                target_url: "u".into(),
                text: "x".into(),
            },
            quality: 0.5,
        };
        assert_eq!(c.best_bid("space game deals").unwrap().bid_cents, 40);
        assert!(c.best_bid("cooking").is_none());
    }

    #[test]
    fn remaining_budget_saturates() {
        let mut c = Campaign {
            advertiser: AdvertiserId(0),
            name: "c".into(),
            daily_budget_cents: 100,
            spent_cents: 0,
            keywords: vec![],
            ad: Ad {
                title: "t".into(),
                display_url: "d".into(),
                target_url: "u".into(),
                text: "x".into(),
            },
            quality: 0.5,
        };
        c.spent_cents = 150;
        assert_eq!(c.remaining_cents(), 0);
    }
}
