//! # symphony-ads
//!
//! The advertising substrate — the reproduction's substitute for the
//! adCenter integration in the paper (§II-A "Built-in Services" and
//! "Monetization"). Keyword-targeted campaigns compete in a
//! generalized second-price auction with quality scores; clicks are
//! billed against daily budgets and revenue-shared with the publisher
//! (the application designer) through an append-only ledger.
//!
//! ## Quick example
//!
//! ```
//! use symphony_ads::{Ad, AdServer, Keyword, MatchType};
//!
//! let mut ads = AdServer::new();
//! let adv = ads.add_advertiser("MegaGames");
//! ads.add_campaign(
//!     adv,
//!     "shooter push",
//!     10_000,
//!     vec![Keyword::new("space shooter", MatchType::Phrase, 55)],
//!     Ad {
//!         title: "Mega Games Sale".into(),
//!         display_url: "megagames.example.com".into(),
//!         target_url: "http://megagames.example.com/sale".into(),
//!         text: "50% off space shooters".into(),
//!     },
//!     0.9,
//! );
//! let placements = ads.select("best space shooter", 3);
//! assert_eq!(placements.len(), 1);
//! let entry = ads.record_click(&placements[0], "GamerQueen").unwrap();
//! assert!(entry.publisher_share_cents > 0);
//! ```

#![warn(missing_docs)]

pub mod auction;
pub mod ledger;
pub mod model;
pub mod server;

pub use auction::{position_ctr, run_auction, Placement, RESERVE_CENTS};
pub use ledger::{BillingError, Ledger, LedgerEntry};
pub use model::{Ad, AdvertiserId, Campaign, CampaignId, Keyword, MatchType};
pub use server::{AdServer, DEFAULT_REV_SHARE};
