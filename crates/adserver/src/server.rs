//! The ad server facade: accounts, campaigns, auctions, billing.

use crate::auction::{run_auction, Placement, RESERVE_CENTS};
use crate::ledger::{BillingError, Ledger, LedgerEntry};
use crate::model::{Ad, AdvertiserId, Campaign, CampaignId, Keyword};
use parking_lot::RwLock;

/// Publisher revenue share of each ad click (the paper: monetization
/// is voluntary and revenue-shared with the designer).
pub const DEFAULT_REV_SHARE: f64 = 0.7;

/// The ad service ("adCenter" substitute).
///
/// Account setup ([`AdServer::add_advertiser`],
/// [`AdServer::add_campaign`], [`AdServer::reset_day`]) is an admin
/// operation and takes `&mut self`. The serving path —
/// [`AdServer::select`] and [`AdServer::record_click`] — takes `&self`
/// and is safe to call from many threads: campaign state sits behind a
/// [`RwLock`] (auctions read, billing writes) and the [`Ledger`] is
/// internally synchronized.
#[derive(Debug, Default)]
pub struct AdServer {
    advertisers: Vec<String>,
    campaigns: RwLock<Vec<Campaign>>,
    ledger: Ledger,
    rev_share: f64,
}

impl AdServer {
    /// Empty server with the default revenue share.
    pub fn new() -> AdServer {
        AdServer {
            advertisers: Vec::new(),
            campaigns: RwLock::new(Vec::new()),
            ledger: Ledger::new(),
            rev_share: DEFAULT_REV_SHARE,
        }
    }

    /// Override the publisher revenue share (clamped to `[0, 1]`).
    pub fn with_rev_share(mut self, share: f64) -> AdServer {
        self.rev_share = share.clamp(0.0, 1.0);
        self
    }

    /// Register an advertiser account.
    pub fn add_advertiser(&mut self, name: &str) -> AdvertiserId {
        self.advertisers.push(name.to_string());
        AdvertiserId(self.advertisers.len() as u32 - 1)
    }

    /// Create a campaign.
    pub fn add_campaign(
        &mut self,
        advertiser: AdvertiserId,
        name: &str,
        daily_budget_cents: u32,
        keywords: Vec<Keyword>,
        ad: Ad,
        quality: f64,
    ) -> CampaignId {
        let campaigns = self.campaigns.get_mut();
        campaigns.push(Campaign {
            advertiser,
            name: name.to_string(),
            daily_budget_cents,
            spent_cents: 0,
            keywords,
            ad,
            quality: quality.clamp(0.05, 1.0),
        });
        CampaignId(campaigns.len() as u32 - 1)
    }

    /// Select up to `slots` ads for a query (GSP auction).
    pub fn select(&self, query: &str, slots: usize) -> Vec<Placement> {
        let campaigns = self.campaigns.read();
        let refs: Vec<(CampaignId, &Campaign)> = campaigns
            .iter()
            .enumerate()
            .map(|(i, c)| (CampaignId(i as u32), c))
            .collect();
        run_auction(&refs, query, slots)
    }

    /// Bill a click on a placement, crediting `publisher`.
    ///
    /// The budget check and the spend update happen under one write
    /// lock, so concurrent clicks can never overdraw a campaign.
    pub fn record_click(
        &self,
        placement: &Placement,
        publisher: &str,
    ) -> Result<LedgerEntry, BillingError> {
        let mut campaigns = self.campaigns.write();
        let campaign = campaigns
            .get_mut(placement.campaign.0 as usize)
            .ok_or(BillingError::UnknownCampaign(placement.campaign))?;
        if campaign.remaining_cents() < placement.price_cents {
            return Err(BillingError::BudgetExhausted(placement.campaign));
        }
        campaign.spent_cents += placement.price_cents;
        drop(campaigns);
        Ok(self.ledger.record(placement, publisher, self.rev_share))
    }

    /// Reset daily budgets (a new simulated day).
    pub fn reset_day(&mut self) {
        for c in self.campaigns.get_mut() {
            c.spent_cents = 0;
        }
    }

    /// The ledger (read-only).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// A campaign's remaining budget.
    pub fn remaining_budget_cents(&self, id: CampaignId) -> Option<u32> {
        self.campaigns
            .read()
            .get(id.0 as usize)
            .map(|c| c.remaining_cents())
    }

    /// Number of campaigns.
    pub fn campaign_count(&self) -> usize {
        self.campaigns.read().len()
    }

    /// Reserve price (exposed for experiments).
    pub fn reserve_cents(&self) -> u32 {
        RESERVE_CENTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MatchType;

    fn server() -> AdServer {
        let mut s = AdServer::new();
        let adv = s.add_advertiser("MegaGames");
        s.add_campaign(
            adv,
            "shooters",
            1_000,
            vec![Keyword::new("game", MatchType::Broad, 60)],
            Ad {
                title: "Mega Games Sale".into(),
                display_url: "megagames.example.com".into(),
                target_url: "http://megagames.example.com/sale".into(),
                text: "50% off shooters".into(),
            },
            0.9,
        );
        let adv2 = s.add_advertiser("BudgetGames");
        s.add_campaign(
            adv2,
            "broad",
            1_000,
            vec![Keyword::new("game", MatchType::Broad, 40)],
            Ad {
                title: "Budget Games".into(),
                display_url: "budget.example.com".into(),
                target_url: "http://budget.example.com".into(),
                text: "cheap games".into(),
            },
            0.6,
        );
        s
    }

    #[test]
    fn select_and_click_flow() {
        let s = server();
        let ps = s.select("space game", 2);
        assert_eq!(ps.len(), 2);
        let entry = s.record_click(&ps[0], "GamerQueen").unwrap();
        assert!(entry.publisher_share_cents > 0);
        assert_eq!(
            s.ledger().publisher_earnings_cents("GamerQueen"),
            entry.publisher_share_cents as u64
        );
        // Budget decremented.
        assert!(s.remaining_budget_cents(ps[0].campaign).unwrap() < 1_000);
    }

    #[test]
    fn clicks_stop_when_budget_gone() {
        let s = server();
        let mut clicks = 0;
        loop {
            let ps = s.select("game", 1);
            if ps.is_empty() {
                break;
            }
            match s.record_click(&ps[0], "p") {
                Ok(_) => clicks += 1,
                Err(BillingError::BudgetExhausted(_)) => break,
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(clicks < 10_000, "budget never exhausted");
        }
        assert!(clicks > 0);
        // After exhaustion the auction excludes both campaigns.
        assert!(s.select("game", 1).is_empty() || clicks > 0);
    }

    #[test]
    fn reset_day_restores_budgets() {
        let mut s = server();
        let ps = s.select("game", 1);
        s.record_click(&ps[0], "p").unwrap();
        let before = s.remaining_budget_cents(ps[0].campaign).unwrap();
        s.reset_day();
        assert!(s.remaining_budget_cents(ps[0].campaign).unwrap() > before);
    }

    #[test]
    fn unknown_campaign_click_fails() {
        let s = server();
        let mut p = s.select("game", 1).remove(0);
        p.campaign = CampaignId(99);
        assert_eq!(
            s.record_click(&p, "p"),
            Err(BillingError::UnknownCampaign(CampaignId(99)))
        );
    }

    #[test]
    fn rev_share_is_configurable() {
        let s = server().with_rev_share(0.5);
        let ps = s.select("game", 1);
        let e = s.record_click(&ps[0], "p").unwrap();
        assert_eq!(e.publisher_share_cents, e.price_cents / 2);
    }

    #[test]
    fn no_match_no_ads() {
        let s = server();
        assert!(s.select("bordeaux wine", 3).is_empty());
    }
}
