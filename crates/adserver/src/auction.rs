//! The ad auction: generalized second price with quality scores.
//!
//! The paper integrates "advertising services such as adCenter,
//! allowing ads to be displayed and configured just like any other
//! content source". This module is the selection half: given a query
//! and a number of slots, run a GSP auction over matching campaigns.
//! Billing happens in [`crate::ledger`] at click time.

use crate::model::{Campaign, CampaignId, MatchType};

/// Minimum price per click, in cents.
pub const RESERVE_CENTS: u32 = 5;

/// An ad selected for a slot.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Winning campaign.
    pub campaign: CampaignId,
    /// Slot position (0 = top).
    pub position: usize,
    /// GSP price the advertiser pays on click, in cents.
    pub price_cents: u32,
    /// The keyword that matched.
    pub keyword: String,
    /// Creative headline (denormalized for rendering).
    pub title: String,
    /// Display URL.
    pub display_url: String,
    /// Click-through target.
    pub target_url: String,
    /// Creative body.
    pub text: String,
}

/// Expected click-through rate of a slot: position decay times the
/// campaign's quality score. Used by revenue experiments.
pub fn position_ctr(position: usize, quality: f64) -> f64 {
    0.30 * 0.6f64.powi(position as i32) * quality
}

/// Run a GSP auction for `query` over `campaigns`, filling up to
/// `slots` placements.
///
/// Ad rank is `bid * quality`; the price for slot *i* is the minimum
/// bid that would still beat slot *i+1*'s rank
/// (`rank_{i+1} / quality_i`, floored at the reserve). Campaigns whose
/// remaining budget cannot cover their potential price are excluded.
pub fn run_auction(
    campaigns: &[(CampaignId, &Campaign)],
    query: &str,
    slots: usize,
) -> Vec<Placement> {
    // Collect matching entries with effective bid and rank.
    struct Entry {
        id: CampaignId,
        bid: u32,
        quality: f64,
        rank: f64,
        keyword: String,
    }
    let mut entries: Vec<Entry> = campaigns
        .iter()
        .filter_map(|(id, c)| {
            let kw = c.best_bid(query)?;
            if c.remaining_cents() < RESERVE_CENTS {
                return None;
            }
            let bid = kw.bid_cents.min(c.remaining_cents());
            Some(Entry {
                id: *id,
                bid,
                quality: c.quality,
                rank: bid as f64 * c.quality,
                keyword: kw.text.clone(),
            })
        })
        .collect();
    entries.sort_by(|a, b| {
        b.rank
            .partial_cmp(&a.rank)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.0.cmp(&b.id.0))
    });
    entries.truncate(slots);

    let mut out = Vec::with_capacity(entries.len());
    for (i, e) in entries.iter().enumerate() {
        let price = if let Some(next) = entries.get(i + 1) {
            // Smallest integer bid beating the next rank.
            ((next.rank / e.quality).floor() as u32 + 1).min(e.bid)
        } else {
            RESERVE_CENTS
        }
        .max(RESERVE_CENTS);
        let campaign = campaigns
            .iter()
            .find(|(id, _)| *id == e.id)
            .map(|(_, c)| *c)
            .expect("entry came from campaigns");
        out.push(Placement {
            campaign: e.id,
            position: i,
            price_cents: price,
            keyword: e.keyword.clone(),
            title: campaign.ad.title.clone(),
            display_url: campaign.ad.display_url.clone(),
            target_url: campaign.ad.target_url.clone(),
            text: campaign.ad.text.clone(),
        });
    }
    out
}

/// Match-type specificity order, used to break bid ties in reporting
/// (exact beats phrase beats broad).
pub fn specificity(match_type: MatchType) -> u8 {
    match match_type {
        MatchType::Exact => 2,
        MatchType::Phrase => 1,
        MatchType::Broad => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Ad, AdvertiserId, Keyword};

    fn campaign(name: &str, bid: u32, quality: f64, budget: u32) -> Campaign {
        Campaign {
            advertiser: AdvertiserId(0),
            name: name.into(),
            daily_budget_cents: budget,
            spent_cents: 0,
            keywords: vec![Keyword::new("game", MatchType::Broad, bid)],
            ad: Ad {
                title: format!("{name} title"),
                display_url: format!("{name}.example.com"),
                target_url: format!("http://{name}.example.com/landing"),
                text: "buy now".into(),
            },
            quality,
        }
    }

    #[test]
    fn highest_rank_wins_top_slot() {
        let a = campaign("a", 100, 0.5, 10_000); // rank 50
        let b = campaign("b", 60, 1.0, 10_000); // rank 60
        let cs = vec![(CampaignId(0), &a), (CampaignId(1), &b)];
        let ps = run_auction(&cs, "fun game", 2);
        assert_eq!(ps[0].campaign, CampaignId(1));
        assert_eq!(ps[1].campaign, CampaignId(0));
    }

    #[test]
    fn gsp_price_is_below_own_bid_and_beats_next_rank() {
        let a = campaign("a", 100, 1.0, 10_000); // rank 100
        let b = campaign("b", 40, 1.0, 10_000); // rank 40
        let cs = vec![(CampaignId(0), &a), (CampaignId(1), &b)];
        let ps = run_auction(&cs, "game", 2);
        // Winner pays just enough to beat rank 40 at quality 1 => 41.
        assert_eq!(ps[0].price_cents, 41);
        assert!(ps[0].price_cents <= 100);
        // Last slot pays reserve.
        assert_eq!(ps[1].price_cents, RESERVE_CENTS);
    }

    #[test]
    fn non_matching_campaigns_excluded() {
        let mut a = campaign("a", 100, 1.0, 10_000);
        a.keywords = vec![Keyword::new("wine", MatchType::Broad, 100)];
        let cs = vec![(CampaignId(0), &a)];
        assert!(run_auction(&cs, "game", 2).is_empty());
    }

    #[test]
    fn exhausted_budget_excluded() {
        let mut a = campaign("a", 100, 1.0, 100);
        a.spent_cents = 98;
        let cs = vec![(CampaignId(0), &a)];
        assert!(run_auction(&cs, "game", 1).is_empty());
    }

    #[test]
    fn slots_limit_output() {
        let cs_owned: Vec<Campaign> = (0..5)
            .map(|i| campaign(&format!("c{i}"), 50 + i, 0.8, 10_000))
            .collect();
        let cs: Vec<(CampaignId, &Campaign)> = cs_owned
            .iter()
            .enumerate()
            .map(|(i, c)| (CampaignId(i as u32), c))
            .collect();
        let ps = run_auction(&cs, "game", 2);
        assert_eq!(ps.len(), 2);
        assert!(ps[0].price_cents >= ps[1].price_cents);
    }

    #[test]
    fn single_entry_pays_reserve() {
        let a = campaign("a", 100, 1.0, 10_000);
        let cs = vec![(CampaignId(0), &a)];
        let ps = run_auction(&cs, "game", 3);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].price_cents, RESERVE_CENTS);
    }

    #[test]
    fn ctr_decays_with_position() {
        assert!(position_ctr(0, 0.8) > position_ctr(1, 0.8));
        assert!(position_ctr(1, 0.8) > position_ctr(3, 0.8));
        assert!(position_ctr(0, 0.9) > position_ctr(0, 0.3));
    }

    #[test]
    fn specificity_order() {
        assert!(specificity(MatchType::Exact) > specificity(MatchType::Phrase));
        assert!(specificity(MatchType::Phrase) > specificity(MatchType::Broad));
    }
}
