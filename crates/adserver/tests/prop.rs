//! Property tests for the ad substrate: GSP invariants, match-type
//! hierarchy, and ledger conservation.

use proptest::prelude::*;
use symphony_ads::{Ad, AdServer, Keyword, MatchType, RESERVE_CENTS};

fn campaign_params() -> impl Strategy<Value = Vec<(u32, f64)>> {
    // (bid, quality) pairs.
    proptest::collection::vec((RESERVE_CENTS..500u32, 0.1f64..1.0), 1..12)
}

fn server_from(params: &[(u32, f64)], keyword: &str) -> AdServer {
    let mut ads = AdServer::new();
    let adv = ads.add_advertiser("A");
    for (i, (bid, quality)) in params.iter().enumerate() {
        ads.add_campaign(
            adv,
            &format!("c{i}"),
            1_000_000,
            vec![Keyword::new(keyword, MatchType::Broad, *bid)],
            Ad {
                title: format!("ad {i}"),
                display_url: "d".into(),
                target_url: format!("http://a{i}.example.com"),
                text: "x".into(),
            },
            *quality,
        );
    }
    ads
}

proptest! {
    /// GSP safety: no winner ever pays more than its own bid, and
    /// never less than the reserve.
    #[test]
    fn price_between_reserve_and_bid(params in campaign_params(), slots in 1usize..6) {
        let ads = server_from(&params, "game");
        let placements = ads.select("fun game", slots);
        for p in &placements {
            let (bid, _) = params[p.campaign.0 as usize];
            prop_assert!(p.price_cents >= RESERVE_CENTS);
            prop_assert!(p.price_cents <= bid, "price {} > bid {bid}", p.price_cents);
        }
    }

    /// Positions are dense from 0 and at most `slots` ads return.
    #[test]
    fn positions_dense_and_bounded(params in campaign_params(), slots in 1usize..6) {
        let ads = server_from(&params, "game");
        let placements = ads.select("game", slots);
        prop_assert!(placements.len() <= slots);
        for (i, p) in placements.iter().enumerate() {
            prop_assert_eq!(p.position, i);
        }
    }

    /// Winners are ordered by rank (bid × quality), descending.
    #[test]
    fn winners_ordered_by_rank(params in campaign_params()) {
        let ads = server_from(&params, "game");
        let placements = ads.select("game", params.len());
        let ranks: Vec<f64> = placements
            .iter()
            .map(|p| {
                let (bid, q) = params[p.campaign.0 as usize];
                bid as f64 * q
            })
            .collect();
        for w in ranks.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9, "ranks out of order: {ranks:?}");
        }
    }

    /// Ledger conservation: publisher share + platform cut equals the
    /// total charged, click by click, for any revenue share.
    #[test]
    fn ledger_conserves_money(
        params in campaign_params(),
        share in 0.0f64..1.0,
        clicks in 1usize..20,
    ) {
        let ads = server_from(&params, "game").with_rev_share(share);
        let mut publisher_total = 0u64;
        for _ in 0..clicks {
            let ps = ads.select("game", 1);
            let Some(p) = ps.first() else { break };
            match ads.record_click(p, "pub") {
                Ok(entry) => publisher_total += entry.publisher_share_cents as u64,
                Err(_) => break, // budget exhausted
            }
        }
        let ledger = ads.ledger();
        let charged: u64 = (0..params.len() as u32)
            .map(|i| ledger.campaign_spend_cents(symphony_ads::CampaignId(i)))
            .sum();
        prop_assert_eq!(
            ledger.platform_cut_cents() + publisher_total,
            charged
        );
    }

    /// Match-type hierarchy: any query matched by Exact is matched by
    /// Phrase; any matched by Phrase is matched by Broad.
    #[test]
    fn match_type_hierarchy(
        kw in "[a-z]{2,6}( [a-z]{2,6}){0,2}",
        query in "[a-z]{2,6}( [a-z]{2,6}){0,4}",
    ) {
        let exact = Keyword::new(&kw, MatchType::Exact, 10).matches(&query);
        let phrase = Keyword::new(&kw, MatchType::Phrase, 10).matches(&query);
        let broad = Keyword::new(&kw, MatchType::Broad, 10).matches(&query);
        if exact {
            prop_assert!(phrase, "exact implies phrase: {kw:?} vs {query:?}");
        }
        if phrase {
            prop_assert!(broad, "phrase implies broad: {kw:?} vs {query:?}");
        }
    }

    /// Budget safety: total campaign spend never exceeds the daily
    /// budget.
    #[test]
    fn budget_never_overspent(budget in RESERVE_CENTS..300u32, clicks in 1usize..50) {
        let mut ads = AdServer::new();
        let adv = ads.add_advertiser("A");
        let c = ads.add_campaign(
            adv,
            "c",
            budget,
            vec![Keyword::new("game", MatchType::Broad, 40)],
            Ad {
                title: "t".into(),
                display_url: "d".into(),
                target_url: "u".into(),
                text: "x".into(),
            },
            0.8,
        );
        for _ in 0..clicks {
            let ps = ads.select("game", 1);
            let Some(p) = ps.first() else { break };
            let _ = ads.record_click(p, "pub");
        }
        prop_assert!(ads.ledger().campaign_spend_cents(c) <= budget as u64);
    }
}
