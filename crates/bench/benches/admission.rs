//! E-overload (wall-clock side): the cost of admission decisions.
//!
//! The SLO shape under overload lives in `--bin experiments
//! e-overload`; this bench pins the real per-query overhead of the
//! pieces it leans on — the token bucket on the admit path, the
//! full front-door shed (the "cheap degraded response" had better
//! actually be cheap), and fan-out worker grants under contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symphony_bench::overload_fleet_world;
use symphony_core::admission::{FanoutScheduler, Lane, TokenBucket};
use symphony_core::AdmissionPolicy;

/// Hot-path token bucket: refill + acquire on every admitted query.
fn bench_token_bucket(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission_bucket");
    group.bench_function("try_acquire", |b| {
        let mut bucket = TokenBucket::new(1_000_000, 1_000_000, 0);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            std::hint::black_box(bucket.try_acquire(now))
        });
    });
    group.finish();
}

/// Full platform paths: an admitted (executed) query vs a shed one.
/// The shed path must be orders of magnitude cheaper — that gap is
/// the capacity the platform claws back under overload.
fn bench_query_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission_query");
    group.sample_size(20);

    // Unlimited admission: every query runs the full execution path.
    let (open, open_ids) = overload_fleet_world(1, &[], false);
    group.bench_function("served", |b| {
        b.iter(|| std::hint::black_box(open.query(open_ids[0], "galactic raiders")))
    });

    // Zero-rate admission drained of its burst: every query sheds.
    let policy = AdmissionPolicy {
        rate_per_sec: 1,
        burst: 1,
        max_concurrency: 16,
        weight: 1,
    };
    let (closed, closed_ids) = overload_fleet_world(1, &[policy], false);
    closed
        .query(closed_ids[0], "galactic raiders")
        .expect("drain burst");
    group.bench_function("shed", |b| {
        b.iter(|| std::hint::black_box(closed.query(closed_ids[0], "galactic raiders")))
    });
    group.finish();
}

/// Weighted fan-out grants: one uncontended tenant vs an interactive
/// grant racing a background hog.
fn bench_fanout_grants(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission_fanout");
    for contended in [false, true] {
        let label = if contended { "contended" } else { "solo" };
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &contended,
            |b, &contended| {
                let scheduler = FanoutScheduler::new(8);
                let _hog = if contended {
                    Some(scheduler.acquire(99, 1, 6, Lane::Background))
                } else {
                    None
                };
                b.iter(|| {
                    let grant = scheduler.acquire(1, 4, 4, Lane::Interactive);
                    std::hint::black_box(grant.workers())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_token_bucket,
    bench_query_paths,
    bench_fanout_grants
);
criterion_main!(benches);
