//! Concurrent query throughput against one shared [`Platform`].
//!
//! Measures real wall-clock queries/second of the `&self` serving path
//! at 1, 2, 4, and 8 threads, for both a cache-friendly (head-heavy
//! Zipf) and a cache-hostile (all-distinct) query stream. On a
//! single-core host the thread counts mostly exercise lock contention
//! rather than parallel speedup; the interesting signal is that
//! throughput does not collapse as threads are added.
//!
//! Plain `main` (harness = false): wall-clock timing over threads fits
//! a scaling table better than criterion's per-iteration model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use symphony_bench::{gamer_queen_world, print_table, zipf_queries, Scale, WorldOptions};
use symphony_core::hosting::Platform;
use symphony_core::AppId;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const QUERIES_PER_THREAD: usize = 400;

/// Run `threads` workers over one shared platform; each worker issues
/// its own slice of `streams`. Returns (elapsed_secs, total_queries).
fn run(platform: &Platform, id: AppId, streams: &[Vec<String>]) -> (f64, u64) {
    let served = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for queries in streams {
            let served = &served;
            scope.spawn(move || {
                for q in queries {
                    platform.query(id, q).expect("query serves");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    (
        start.elapsed().as_secs_f64(),
        served.load(Ordering::Relaxed),
    )
}

fn streams_for(threads: usize, zipf: bool) -> Vec<Vec<String>> {
    (0..threads)
        .map(|t| {
            if zipf {
                // Head-heavy: mostly repeated queries, high hit rate.
                zipf_queries(QUERIES_PER_THREAD, 1.1, 42 + t as u64)
            } else {
                // All distinct: every query misses and executes.
                (0..QUERIES_PER_THREAD)
                    .map(|i| format!("shooter game v{t} n{i}"))
                    .collect()
            }
        })
        .collect()
}

fn main() {
    let mut rows = Vec::new();
    for &zipf in &[true, false] {
        let label = if zipf { "zipf" } else { "distinct" };
        for &threads in &THREAD_COUNTS {
            // A fresh world per cell so cache state never leaks
            // between measurements.
            let (platform, id) = gamer_queen_world(WorldOptions {
                scale: Scale::Small,
                ..WorldOptions::default()
            });
            let streams = streams_for(threads, zipf);
            // Warm the engine (index structures, allocator) with one
            // untimed query.
            platform.query(id, "warmup shooter").expect("warmup");

            let (secs, served) = run(&platform, id, &streams);
            let qps = served as f64 / secs.max(1e-9);
            let stats = platform.cache_stats(id).expect("app exists");
            rows.push(vec![
                label.to_string(),
                threads.to_string(),
                served.to_string(),
                format!("{:.3}", secs * 1e3),
                format!("{qps:.0}"),
                format!("{:.2}", stats.hit_rate()),
            ]);
        }
    }
    print_table(
        "Concurrent query throughput (shared Platform, &self serving path)",
        &["stream", "threads", "queries", "wall ms", "qps", "hit rate"],
        &rows,
    );
}
