//! E3: inverted-index build throughput and the compression pass.
//! E-build: segmented parallel build scaling (1/2/4/8 threads) and the
//! allocation-lean analysis chain (owned tokens vs streaming scratch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use symphony_bench::{corpus, Scale};
use symphony_text::{Analyzer, Doc, Index, IndexConfig, StandardAnalyzer, TokenScratch};

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_index_build");
    group.sample_size(10);
    for scale in [Scale::Small, Scale::Medium] {
        let corpus = corpus(scale);
        let docs: Vec<(String, String)> = corpus
            .pages
            .iter()
            .map(|p| (p.title.clone(), p.body.clone()))
            .collect();
        group.throughput(Throughput::Elements(docs.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("build", scale.label()),
            &docs,
            |b, docs| {
                b.iter(|| {
                    let mut index = Index::new(IndexConfig::default());
                    let title = index.register_field("title", 2.0);
                    let body = index.register_field("body", 1.0);
                    for (t, bod) in docs {
                        index.add(Doc::new().field(title, t.clone()).field(body, bod.clone()));
                    }
                    index.total_docs()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("optimize", scale.label()),
            &docs,
            |b, docs| {
                b.iter_batched(
                    || {
                        let mut index = Index::new(IndexConfig::default());
                        let title = index.register_field("title", 2.0);
                        let body = index.register_field("body", 1.0);
                        for (t, bod) in docs {
                            index.add(Doc::new().field(title, t.clone()).field(body, bod.clone()));
                        }
                        index
                    },
                    |mut index| {
                        index.optimize();
                        index.stats().postings_bytes
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

/// E-build: one corpus-scale batch through `Index::build_parallel` at
/// increasing thread counts. `threads = 1` is the sequential baseline
/// (identical code path to per-doc `add`); the differential tests
/// guarantee every row builds the same index, so the rows are directly
/// comparable.
fn bench_parallel_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e_build_parallel");
    group.sample_size(10);
    let corpus = corpus(Scale::Medium);
    let docs: Vec<(String, String)> = corpus
        .pages
        .iter()
        .map(|p| (p.title.clone(), p.body.clone()))
        .collect();
    group.throughput(Throughput::Elements(docs.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &docs, |b, docs| {
            b.iter(|| {
                let mut index = Index::new(IndexConfig::default());
                let title = index.register_field("title", 2.0);
                let body = index.register_field("body", 1.0);
                let batch: Vec<Doc> = docs
                    .iter()
                    .map(|(t, bod)| Doc::new().field(title, t.clone()).field(body, bod.clone()))
                    .collect();
                index.build_parallel(batch, threads);
                index.total_docs()
            });
        });
    }
    group.finish();
}

/// Analysis-chain throughput in tokens/sec: materializing owned
/// `Token`s per call vs streaming borrowed terms through a reused
/// scratch (the path the index build runs on).
fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_alloc");
    group.sample_size(10);
    let corpus = corpus(Scale::Medium);
    let texts: Vec<&str> = corpus.pages.iter().map(|p| p.body.as_str()).collect();
    let analyzer = StandardAnalyzer::new();
    let mut scratch = TokenScratch::default();
    let mut total_tokens = 0u64;
    for t in &texts {
        analyzer.analyze_with(t, &mut scratch, &mut |_, _, _, _| total_tokens += 1);
    }
    group.throughput(Throughput::Elements(total_tokens));
    group.bench_function("analyze_into_owned", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            let mut n = 0usize;
            for t in &texts {
                out.clear();
                analyzer.analyze_into(t, &mut out);
                n += out.len();
            }
            n
        })
    });
    group.bench_function("analyze_with_streaming", |b| {
        b.iter(|| {
            let mut scratch = TokenScratch::default();
            let mut n = 0usize;
            for t in &texts {
                analyzer.analyze_with(t, &mut scratch, &mut |_, _, _, _| n += 1);
            }
            n
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_index_build,
    bench_parallel_build,
    bench_analysis
);
criterion_main!(benches);
