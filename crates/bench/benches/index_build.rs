//! E3: inverted-index build throughput and the compression pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use symphony_bench::{corpus, Scale};
use symphony_text::{Doc, Index, IndexConfig};

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_index_build");
    group.sample_size(10);
    for scale in [Scale::Small, Scale::Medium] {
        let corpus = corpus(scale);
        let docs: Vec<(String, String)> = corpus
            .pages
            .iter()
            .map(|p| (p.title.clone(), p.body.clone()))
            .collect();
        group.throughput(Throughput::Elements(docs.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("build", scale.label()),
            &docs,
            |b, docs| {
                b.iter(|| {
                    let mut index = Index::new(IndexConfig::default());
                    let title = index.register_field("title", 2.0);
                    let body = index.register_field("body", 1.0);
                    for (t, bod) in docs {
                        index.add(Doc::new().field(title, t.clone()).field(body, bod.clone()));
                    }
                    index.total_docs()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("optimize", scale.label()),
            &docs,
            |b, docs| {
                b.iter_batched(
                    || {
                        let mut index = Index::new(IndexConfig::default());
                        let title = index.register_field("title", 2.0);
                        let body = index.register_field("body", 1.0);
                        for (t, bod) in docs {
                            index.add(Doc::new().field(title, t.clone()).field(body, bod.clone()));
                        }
                        index
                    },
                    |mut index| {
                        index.optimize();
                        index.stats().postings_bytes
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
