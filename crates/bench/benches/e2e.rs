//! E8: end-to-end hosted query cost, cold (cache miss) and warm
//! (cache hit) — the two latencies a Symphony deployment actually
//! serves.

use criterion::{criterion_group, criterion_main, Criterion};
use symphony_bench::{gamer_queen_world, zipf_queries, Scale, WorldOptions};

fn bench_e2e(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_e2e");
    group.sample_size(20);

    // Cold path: distinct queries defeat the cache.
    group.bench_function("cold_query", |b| {
        let (platform, id) = gamer_queen_world(WorldOptions {
            scale: Scale::Small,
            ..WorldOptions::default()
        });
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            // Unique suffix keeps every request a miss while staying a
            // realistic query.
            platform
                .query(id, &format!("space shooter {i}"))
                .expect("ok")
        });
    });

    // Warm path: one hot query.
    group.bench_function("warm_query", |b| {
        let (platform, id) = gamer_queen_world(WorldOptions {
            scale: Scale::Small,
            ..WorldOptions::default()
        });
        platform.query(id, "space shooter").expect("warms cache");
        b.iter(|| platform.query(id, "space shooter").expect("ok"));
    });

    // Mixed Zipf workload.
    group.bench_function("zipf_mix", |b| {
        let (platform, id) = gamer_queen_world(WorldOptions {
            scale: Scale::Small,
            ..WorldOptions::default()
        });
        let queries = zipf_queries(128, 1.0, 31);
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            platform.query(id, q).expect("ok")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
