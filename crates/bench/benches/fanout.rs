//! E1 (wall-clock side): parallel vs sequential supplemental fan-out.
//!
//! The virtual-clock shape lives in `--bin experiments`; this bench
//! measures the real executor cost of the std scoped-thread fan-out vs
//! a sequential loop on the same request.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symphony_bench::{gamer_queen_world, Scale, WorldOptions};
use symphony_core::runtime::{execute, ExecMode};
use symphony_core::source::Substrates;

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_fanout");
    group.sample_size(20);
    for sources in [1usize, 2, 4] {
        for mode in [ExecMode::Parallel, ExecMode::Sequential] {
            let (platform, id) = gamer_queen_world(WorldOptions {
                scale: Scale::Small,
                mode,
                supplemental_sources: sources,
                primary_k: 10,
            });
            let app = platform.app(id).expect("registered").clone();
            let label = format!(
                "{}x_{}",
                sources,
                match mode {
                    ExecMode::Parallel => "parallel",
                    ExecMode::Sequential => "sequential",
                }
            );
            group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
                let subs = Substrates {
                    space: platform.store().space_by_id(app.owner),
                    engine: Some(platform.engine()),
                    transport: None,
                    ads: None,
                    scatter: None,
                };
                b.iter(|| execute(&app, "space shooter", subs, mode));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
