//! E6: GSP auction selection and click-billing throughput vs the
//! number of competing campaigns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symphony_ads::{Ad, AdServer, Keyword, MatchType};
use symphony_web::Topic;

fn server_with(n: usize) -> AdServer {
    let mut ads = AdServer::new();
    let adv = ads.add_advertiser("A");
    let words = Topic::Games.words();
    for i in 0..n {
        ads.add_campaign(
            adv,
            &format!("c{i}"),
            u32::MAX / 2,
            vec![Keyword::new(
                words[i % words.len()],
                MatchType::Broad,
                10 + (i as u32 % 90),
            )],
            Ad {
                title: format!("ad {i}"),
                display_url: "d".into(),
                target_url: format!("http://a{i}.example.com"),
                text: "x".into(),
            },
            0.3 + (i as f64 % 7.0) / 10.0,
        );
    }
    ads
}

fn bench_auction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_auction");
    for n in [10usize, 100, 1000] {
        let ads = server_with(n);
        group.bench_with_input(BenchmarkId::new("select", n), &ads, |b, ads| {
            let words = Topic::Games.words();
            let mut i = 0usize;
            b.iter(|| {
                let q = format!("{} game", words[i % words.len()]);
                i += 1;
                ads.select(&q, 3)
            });
        });
    }
    // Billing path.
    let ads = server_with(100);
    let placement = ads.select("game review", 1).remove(0);
    group.bench_function("record_click", |b| {
        b.iter(|| ads.record_click(&placement, "pub").expect("budget is huge"));
    });
    group.finish();
}

criterion_group!(benches, bench_auction);
criterion_main!(benches);
