//! E2 (wall-clock side): platform query throughput with the result
//! cache absorbing a Zipf-skewed workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symphony_bench::{gamer_queen_world, zipf_queries, Scale, WorldOptions};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_cache");
    group.sample_size(10);
    for skew in [0.6f64, 1.2] {
        let queries = zipf_queries(64, skew, 17);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("zipf_{skew}")),
            &queries,
            |b, queries| {
                // One warm platform per measurement batch; the cache
                // carries across iterations, which is the deployment
                // reality being measured.
                let (platform, id) = gamer_queen_world(WorldOptions {
                    scale: Scale::Small,
                    ..WorldOptions::default()
                });
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    platform.query(id, q).expect("published")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
