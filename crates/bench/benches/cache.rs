//! E2 / E-cache (wall-clock side): platform query throughput with the
//! result cache absorbing a Zipf-skewed workload, the shared L2 source
//! cache on a multi-app fleet, and the raw O(1) LRU eviction path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symphony_bench::{gamer_queen_world, shared_fleet_world, zipf_queries, Scale, WorldOptions};
use symphony_core::cache::LruTtlCache;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_cache");
    group.sample_size(10);
    for skew in [0.6f64, 1.2] {
        let queries = zipf_queries(64, skew, 17);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("zipf_{skew}")),
            &queries,
            |b, queries| {
                // One warm platform per measurement batch; the cache
                // carries across iterations, which is the deployment
                // reality being measured. L2 off: this group isolates
                // the L1 response cache (e_cache_l2 measures the L2).
                let (platform, id) = gamer_queen_world(WorldOptions {
                    scale: Scale::Small,
                    ..WorldOptions::default()
                });
                let platform =
                    platform.with_source_cache(symphony_core::SourceCacheConfig::disabled());
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    platform.query(id, q).expect("published")
                });
            },
        );
    }
    group.finish();
}

/// E-cache: an 8-app fleet sharing sources, L1-only vs L1+L2.
fn bench_source_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("e_cache_l2");
    group.sample_size(10);
    let queries = zipf_queries(64, 1.0, 23);
    for (label, l2) in [("l1_only", false), ("l1_plus_l2", true)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &queries,
            |b, queries| {
                let (platform, ids) = shared_fleet_world(8, l2);
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    let id = ids[i % ids.len()];
                    i += 1;
                    platform.query(id, q).expect("published")
                });
            },
        );
    }
    group.finish();
}

/// Raw LRU churn: every put on a full cache evicts; the intrusive
/// list keeps this O(1) regardless of capacity, so the per-op cost
/// must stay flat from 64 to 65536 entries.
fn bench_lru_eviction(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru_eviction");
    for capacity in [64usize, 4096, 65536] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &capacity| {
                let mut cache: LruTtlCache<u64, u64> = LruTtlCache::new(capacity, u64::MAX / 2);
                for k in 0..capacity as u64 {
                    cache.put(k, k, 0);
                }
                let mut next = capacity as u64;
                b.iter(|| {
                    cache.put(next, next, 0);
                    next += 1;
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cache, bench_source_cache, bench_lru_eviction);
criterion_main!(benches);
