//! E-postings micro-benchmarks for the bit-packed posting format.
//!
//! `packed_decode`: full cursor walks and seek-heavy skip patterns over
//! bit-packed 128-doc blocks vs the raw (uncompressed) posting list —
//! the per-posting decode cost the packed format has to amortize away.
//!
//! `gallop_intersect`: conjunctive (`+a +b`) and phrase queries on the
//! optimized corpus, pruned vs exhaustive — the rarest-first galloping
//! intersection and the pruned phrase scorer are only reachable through
//! the pruned executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symphony_bench::{corpus, Scale};
use symphony_text::postings::{CompressedPostings, PostingList, NO_DOC};
use symphony_text::{Doc, DocId, Index, IndexConfig, Query, ScoreMode, Searcher};

/// A synthetic posting list: `n` docs with a gap pattern wide enough to
/// spread across many blocks, a few positions per doc.
fn synthetic_list(n: u32) -> PostingList {
    let mut list = PostingList::new();
    let mut doc = 0u32;
    for i in 0..n {
        doc += 1 + (i % 7);
        for p in 0..(1 + i % 3) {
            list.push_occurrence(DocId(doc), p * 5 + i % 11);
        }
    }
    list
}

/// Reference encoding of the pre-packed sealed format: per posting, a
/// delta-varint doc id, a varint tf, then the position varints inline —
/// so walking docs had to skip every posting's position bytes.
fn varint_stream(list: &PostingList) -> Vec<u8> {
    fn push(out: &mut Vec<u8>, mut v: u32) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                break;
            }
            out.push(byte | 0x80);
        }
    }
    let mut out = Vec::new();
    let mut prev = 0u32;
    for p in list.postings() {
        push(&mut out, p.doc.0 - prev);
        prev = p.doc.0;
        push(&mut out, p.positions.len() as u32);
        let mut pp = 0u32;
        for &pos in &p.positions {
            push(&mut out, pos - pp);
            pp = pos;
        }
    }
    out
}

#[inline]
fn read_varint(data: &[u8], at: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let b = data[*at];
        *at += 1;
        v |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

fn bench_packed_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("packed_decode");
    let list = synthetic_list(100_000);
    let packed = CompressedPostings::encode(&list);
    let varint = varint_stream(&list);

    group.bench_function(BenchmarkId::new("walk", "varint"), |b| {
        b.iter(|| {
            let mut at = 0usize;
            let mut doc = 0u32;
            let mut acc = 0u64;
            while at < varint.len() {
                doc += read_varint(&varint, &mut at);
                let tf = read_varint(&varint, &mut at);
                for _ in 0..tf {
                    read_varint(&varint, &mut at);
                }
                acc += u64::from(doc) + u64::from(tf);
            }
            acc
        });
    });

    group.bench_function(BenchmarkId::new("walk", "packed"), |b| {
        b.iter(|| {
            let mut cur = packed.cursor();
            let mut acc = 0u64;
            while cur.doc() != NO_DOC {
                acc += u64::from(cur.doc()) + u64::from(cur.tf());
                cur.next();
            }
            acc
        });
    });
    group.bench_function(BenchmarkId::new("walk", "raw"), |b| {
        b.iter(|| {
            let mut cur = list.cursor();
            let mut acc = 0u64;
            while cur.doc() != NO_DOC {
                acc += u64::from(cur.doc()) + u64::from(cur.tf());
                cur.next();
            }
            acc
        });
    });

    // Seek-heavy: long strides so the block directory (packed) and the
    // in-list binary search (raw) both skip most postings.
    let last = list.postings().last().unwrap().doc.0;
    group.bench_function(BenchmarkId::new("seek", "packed"), |b| {
        b.iter(|| {
            let mut cur = packed.cursor();
            let mut acc = 0u64;
            let mut target = 0u32;
            while cur.doc() != NO_DOC {
                target = (target + 997).min(last + 1);
                cur.seek(target);
                acc += u64::from(cur.doc());
                if target > last {
                    break;
                }
            }
            acc
        });
    });
    group.bench_function(BenchmarkId::new("seek", "raw"), |b| {
        b.iter(|| {
            let mut cur = list.cursor();
            let mut acc = 0u64;
            let mut target = 0u32;
            while cur.doc() != NO_DOC {
                target = (target + 997).min(last + 1);
                cur.seek(target);
                acc += u64::from(cur.doc());
                if target > last {
                    break;
                }
            }
            acc
        });
    });
    group.finish();
}

fn bench_gallop_intersect(c: &mut Criterion) {
    let mut group = c.benchmark_group("gallop_intersect");
    group.sample_size(60);
    let pages = corpus(Scale::Large);
    let mut index = Index::new(IndexConfig::default());
    let title = index.register_field("title", 2.0);
    let body = index.register_field("body", 1.0);
    for p in &pages.pages {
        index.add(Doc::new().field(title, &*p.title).field(body, &*p.body));
    }
    index.optimize();

    let conjunctions: Vec<Query> = [
        "+game +review",
        "+game +player +level",
        "+best +guide today",
    ]
    .iter()
    .map(|q| Query::parse(q))
    .collect();
    let phrases: Vec<Query> = [
        "\"game review\"",
        "\"best game\" player",
        "+\"game review\" +player",
    ]
    .iter()
    .map(|q| Query::parse(q))
    .collect();

    for (shape, queries) in [("conjunction", &conjunctions), ("phrase", &phrases)] {
        for (variant, mode) in [
            ("pruned", ScoreMode::TopKPruned),
            ("exhaustive", ScoreMode::Exhaustive),
        ] {
            group.bench_with_input(BenchmarkId::new(shape, variant), &index, |b, index| {
                let searcher = Searcher::new(index).with_mode(mode);
                let mut i = 0usize;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    searcher.search(q, 10)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_packed_decode, bench_gallop_intersect);
criterion_main!(benches);
