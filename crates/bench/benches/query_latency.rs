//! E4: BM25 top-k query latency against corpus size, raw vs
//! compressed postings (the decode cost of the E3 space win).
//!
//! E-topk: MaxScore pruned execution vs exhaustive scoring at
//! k ∈ {10, 100} on the optimized default corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symphony_bench::{corpus, zipf_queries, Scale};
use symphony_text::{Doc, Index, IndexConfig, Query, ScoreMode, Searcher};

fn build_index(scale: Scale, optimize: bool) -> Index {
    let corpus = corpus(scale);
    let mut index = Index::new(IndexConfig::default());
    let title = index.register_field("title", 2.0);
    let body = index.register_field("body", 1.0);
    for p in &corpus.pages {
        index.add(Doc::new().field(title, &*p.title).field(body, &*p.body));
    }
    if optimize {
        index.optimize();
    }
    index
}

fn bench_query_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_query_latency");
    group.sample_size(20);
    let queries: Vec<Query> = zipf_queries(32, 1.0, 23)
        .iter()
        .map(|q| Query::parse(q))
        .collect();
    for scale in [Scale::Small, Scale::Medium, Scale::Large] {
        for (variant, optimize) in [("raw", false), ("compressed", true)] {
            let index = build_index(scale, optimize);
            group.bench_with_input(
                BenchmarkId::new(variant, scale.label()),
                &index,
                |b, index| {
                    let searcher = Searcher::new(index);
                    let mut i = 0usize;
                    b.iter(|| {
                        let q = &queries[i % queries.len()];
                        i += 1;
                        searcher.search(q, 10)
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_topk_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("etopk_pruned_vs_exhaustive");
    // Query latency is microseconds; a few hundred iterations keep the
    // mean stable. CI's CRITERION_SAMPLE_SIZE=1 caps this for smoke.
    group.sample_size(400);
    let queries: Vec<Query> = zipf_queries(32, 1.0, 23)
        .iter()
        .map(|q| Query::parse(q))
        .collect();
    // Multi-term-only slice: single-term queries have no intersection
    // or non-essential terms to prune, so they dilute the signal the
    // packed-block + MaxScore work targets.
    let multi: Vec<Query> = zipf_queries(64, 1.0, 23)
        .iter()
        .filter(|q| q.split_whitespace().count() >= 2)
        .map(|q| Query::parse(q))
        .collect();
    let index = build_index(Scale::Large, true);
    for k in [10usize, 100] {
        for (variant, mode) in [
            ("pruned", ScoreMode::TopKPruned),
            ("exhaustive", ScoreMode::Exhaustive),
        ] {
            group.bench_with_input(
                BenchmarkId::new(variant, format!("k{k}")),
                &index,
                |b, index| {
                    let searcher = Searcher::new(index).with_mode(mode);
                    let mut i = 0usize;
                    b.iter(|| {
                        let q = &queries[i % queries.len()];
                        i += 1;
                        searcher.search(q, k)
                    });
                },
            );
        }
    }
    group.bench_with_input(
        BenchmarkId::new("pruned-multi", "k10"),
        &index,
        |b, index| {
            let searcher = Searcher::new(index);
            let mut i = 0usize;
            b.iter(|| {
                let q = &multi[i % multi.len()];
                i += 1;
                searcher.search(q, 10)
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_query_latency, bench_topk_pruning);
criterion_main!(benches);
