//! Resilience (wall-clock side): what the resilient serving path
//! costs the real executor. The virtual-latency shape lives in
//! `--bin experiments` (E-resilience); this bench measures the
//! overhead of breaker checks, deterministic latency draws, and the
//! fast-fail path against a tripped circuit.

use criterion::{criterion_group, criterion_main, Criterion};
use symphony_bench::{resilience_world, ResilienceOptions};
use symphony_services::{BreakerConfig, CallPolicy, FaultPlan, LatencyModel};

fn bench_resilience(c: &mut Criterion) {
    let mut group = c.benchmark_group("resilience");
    group.sample_size(20);

    // Healthy endpoint through the full resilient stack (breaker
    // admit + pure-hash draw + hedging bookkeeping).
    let (healthy, id) = resilience_world(ResilienceOptions {
        policy: CallPolicy {
            timeout_ms: 250,
            retries: 2,
            backoff_base_ms: 25,
            backoff_cap_ms: 500,
            hedge_after_ms: Some(60),
        },
        ..ResilienceOptions::default()
    });
    group.bench_function("healthy_resilient_query", |b| {
        b.iter(|| healthy.query(id, "space shooter").expect("ok"))
    });

    // Endpoint in permanent outage with breakers disabled: every
    // query re-burns timeout × attempts (the naive worst case).
    let (naive_outage, id) = resilience_world(ResilienceOptions {
        breakers: BreakerConfig::disabled(),
        faults: FaultPlan::new().outage("pricing", 0, u64::MAX),
        ..ResilienceOptions::default()
    });
    group.bench_function("outage_naive_retries", |b| {
        b.iter(|| naive_outage.query(id, "space shooter").expect("ok"))
    });

    // Same outage with the breaker tripped: queries fast-fail.
    let (tripped, id) = resilience_world(ResilienceOptions {
        latency: LatencyModel {
            base_ms: 20,
            jitter_ms: 30,
            failure_rate: 0.0,
        },
        breakers: BreakerConfig {
            failure_threshold: 1,
            open_ms: u64::MAX,
            half_open_successes: 1,
        },
        faults: FaultPlan::new().outage("pricing", 0, u64::MAX),
        ..ResilienceOptions::default()
    });
    tripped.query(id, "space shooter").expect("trips breaker");
    group.bench_function("outage_breaker_fast_fail", |b| {
        b.iter(|| tripped.query(id, "space shooter").expect("ok"))
    });

    group.finish();
}

criterion_group!(benches, bench_resilience);
criterion_main!(benches);
