//! Shared world builders for the Symphony benchmark harness.
//!
//! Every bench target and report binary builds its fixtures through
//! these helpers so that Table I, the figures, and experiments E1–E8
//! all run on the same substrate configurations (documented in
//! DESIGN.md's per-experiment index).

#![warn(missing_docs)]

pub mod traffic;

use symphony_cluster::Router;
use symphony_core::app::AppBuilder;
use symphony_core::hosting::Platform;
use symphony_core::runtime::ExecMode;
use symphony_core::source::DataSourceDef;
use symphony_core::AppId;
use symphony_designer::{Canvas, Element};
use symphony_services::{
    BreakerConfig, CallPolicy, FaultPlan, InventoryService, LatencyModel, PricingService,
};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::IndexedTable;
use symphony_web::{Corpus, CorpusConfig, SearchConfig, SearchEngine, Topic, Vertical};

pub use symphony_baselines::{INVENTORY_CSV, REVIEW_SITES};

/// Corpus scale presets used across experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~300 pages (unit-test sized).
    Small,
    /// ~900 pages (default experiments).
    Medium,
    /// ~3500 pages (index/query scaling points).
    Large,
}

impl Scale {
    /// `(sites_per_topic, pages_per_site)` for the preset.
    pub fn dims(self) -> (usize, usize) {
        match self {
            Scale::Small => (2, 4),
            Scale::Medium => (5, 10),
            Scale::Large => (12, 20),
        }
    }

    /// Label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }
}

/// Build the shared corpus with the GamerQueen entities woven in.
pub fn corpus(scale: Scale) -> Corpus {
    let (sites, pages) = scale.dims();
    Corpus::generate(
        &CorpusConfig {
            sites_per_topic: sites,
            pages_per_site: pages,
            ..CorpusConfig::default()
        }
        .with_entities(Topic::Games, symphony_baselines::ENTITIES),
    )
}

/// Options for [`gamer_queen_world`].
#[derive(Debug, Clone, Copy)]
pub struct WorldOptions {
    /// Corpus scale.
    pub scale: Scale,
    /// Fan-out mode.
    pub mode: ExecMode,
    /// Number of supplemental sources attached per result
    /// (1 = reviews; 2 = +pricing; 3 = +stock; 4 = +images).
    pub supplemental_sources: usize,
    /// Primary result-list size.
    pub primary_k: usize,
}

impl Default for WorldOptions {
    fn default() -> Self {
        WorldOptions {
            scale: Scale::Medium,
            mode: ExecMode::Parallel,
            supplemental_sources: 2,
            primary_k: 10,
        }
    }
}

/// Build the full GamerQueen platform: inventory uploaded, services
/// registered, app designed/published. Returns the platform and app.
pub fn gamer_queen_world(options: WorldOptions) -> (Platform, AppId) {
    // Benchmarks push millions of requests through one app; the
    // request quota under test lives in the hosting unit tests, not
    // here.
    let mut platform = Platform::new(SearchEngine::new(corpus(options.scale)))
        .with_mode(options.mode)
        .with_quotas(symphony_core::QuotaConfig {
            requests_per_minute: u32::MAX,
            ..symphony_core::QuotaConfig::default()
        });
    let (tenant, key) = platform.create_tenant("GamerQueen");
    let (table, _) = ingest("inventory", INVENTORY_CSV, DataFormat::Csv).expect("csv parses");
    let mut indexed = IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
        .expect("columns exist");
    platform.upload_table(tenant, &key, indexed).expect("quota");
    platform
        .transport_mut()
        .register("pricing", Box::new(PricingService), LatencyModel::fast());
    platform
        .transport_mut()
        .register("stock", Box::new(InventoryService), LatencyModel::default());

    let mut item_children = vec![
        Element::link_field("detail_url", "{title}"),
        Element::text("{description}"),
    ];
    let mut sources: Vec<(&str, DataSourceDef, &str)> = Vec::new();
    if options.supplemental_sources >= 1 {
        item_children.push(Element::result_list(
            "reviews",
            Element::column(vec![
                Element::link_field("url", "{title}"),
                Element::rich_text("{snippet}"),
            ]),
            3,
        ));
        sources.push((
            "reviews",
            DataSourceDef::WebVertical {
                vertical: Vertical::Web,
                config: SearchConfig::default().restrict_to(REVIEW_SITES),
            },
            "{title} review",
        ));
    }
    if options.supplemental_sources >= 2 {
        item_children.push(Element::result_list(
            "pricing",
            Element::text("${price}"),
            1,
        ));
        sources.push((
            "pricing",
            DataSourceDef::Service {
                endpoint: "pricing".into(),
                operation: "/price".into(),
                item_param: "item".into(),
                policy: CallPolicy::default(),
            },
            "{title}",
        ));
    }
    if options.supplemental_sources >= 3 {
        item_children.push(Element::result_list(
            "stock",
            Element::text("{quantity} in stock"),
            1,
        ));
        sources.push((
            "stock",
            DataSourceDef::Service {
                endpoint: "stock".into(),
                operation: "CheckStock".into(),
                item_param: "item".into(),
                policy: CallPolicy::default(),
            },
            "{title}",
        ));
    }
    if options.supplemental_sources >= 4 {
        item_children.push(Element::result_list(
            "shots",
            Element::image_field("image_src", "{title}"),
            1,
        ));
        sources.push((
            "shots",
            DataSourceDef::WebVertical {
                vertical: Vertical::Image,
                config: SearchConfig::default(),
            },
            "{title}",
        ));
    }

    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    canvas
        .insert(root, Element::search_box("Search games…"))
        .expect("root");
    canvas
        .insert(
            root,
            Element::result_list(
                "inventory",
                Element::column(item_children),
                options.primary_k,
            ),
        )
        .expect("root");

    let mut builder = AppBuilder::new("GamerQueen", tenant).layout(canvas).source(
        "inventory",
        DataSourceDef::Proprietary {
            table: "inventory".into(),
        },
    );
    for (name, def, template) in sources {
        builder = builder.source(name, def).supplemental(name, template);
    }
    let config = builder.build().expect("valid app");
    let id = platform.register_app(config).expect("registers");
    platform.publish(id).expect("publishes");
    (platform, id)
}

/// Options for [`resilience_world`] (experiment E-resilience and the
/// `resilience` bench group).
#[derive(Debug, Clone)]
pub struct ResilienceOptions {
    /// Transport seed (the chaos grid varies it).
    pub seed: u64,
    /// Latency model of the pricing endpoint.
    pub latency: LatencyModel,
    /// Call policy on the pricing source.
    pub policy: CallPolicy,
    /// Breaker tuning ([`BreakerConfig::disabled`] = naive baseline).
    pub breakers: BreakerConfig,
    /// Per-query deadline / budget / retry limits.
    pub resilience: symphony_core::ResiliencePolicy,
    /// Scheduled faults on the virtual clock.
    pub faults: FaultPlan,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        ResilienceOptions {
            seed: 0xD1CE,
            latency: LatencyModel {
                base_ms: 20,
                jitter_ms: 30,
                failure_rate: 0.01,
            },
            policy: CallPolicy::default(),
            breakers: BreakerConfig::default(),
            resilience: symphony_core::ResiliencePolicy::default(),
            faults: FaultPlan::new(),
        }
    }
}

/// A small platform tuned for resilience measurements: one proprietary
/// primary, one pricing-service supplemental, both cache levels
/// disabled (L1 TTL 0, L2 off) so every query exercises the live
/// fetch path — the retry/breaker/hedge machinery under test, not the
/// caches, must absorb the incident.
pub fn resilience_world(options: ResilienceOptions) -> (Platform, AppId) {
    let (sites, pages) = Scale::Small.dims();
    let corpus = Corpus::generate(&CorpusConfig {
        sites_per_topic: sites,
        pages_per_site: pages,
        ..CorpusConfig::default()
    });
    let mut platform = Platform::new(SearchEngine::new(corpus))
        .with_transport_seed(options.seed)
        .with_breaker_config(options.breakers)
        .with_source_cache(symphony_core::SourceCacheConfig::disabled())
        .with_quotas(symphony_core::QuotaConfig {
            requests_per_minute: u32::MAX,
            cache_ttl_ms: 0,
            ..symphony_core::QuotaConfig::default()
        });
    platform
        .transport_mut()
        .register("pricing", Box::new(PricingService), options.latency);
    platform.transport_mut().set_fault_plan(options.faults);
    let (tenant, key) = platform.create_tenant("GamerQueen");
    let (table, _) = ingest("inventory", INVENTORY_CSV, DataFormat::Csv).expect("csv parses");
    let mut indexed = IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
        .expect("columns exist");
    platform.upload_table(tenant, &key, indexed).expect("quota");

    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    let item = Element::column(vec![
        Element::text("{title}"),
        Element::result_list("pricing", Element::text("${price}"), 1),
    ]);
    canvas
        .insert(root, Element::result_list("inventory", item, 10))
        .expect("root");
    let config = AppBuilder::new("GamerQueen", tenant)
        .layout(canvas)
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .source(
            "pricing",
            DataSourceDef::Service {
                endpoint: "pricing".into(),
                operation: "/price".into(),
                item_param: "item".into(),
                policy: options.policy,
            },
        )
        .supplemental("pricing", "{title}")
        .resilience(options.resilience)
        .build()
        .expect("valid app");
    let id = platform.register_app(config).expect("registers");
    platform.publish(id).expect("publishes");
    (platform, id)
}

/// A fleet of structurally-identical apps on one platform, each on its
/// own tenant, all sharing the same review vertical and pricing
/// endpoint (experiment E-cache). Tenancy isolates the L1 response
/// caches and the proprietary tables; the web and service sources are
/// tenant-agnostic, so the shared L2 source cache can serve one app's
/// fetches from another's — exactly the cross-application reuse the
/// platform-wide cache exists for. Pass `l2 = false` for the
/// L1-only ablation baseline.
pub fn shared_fleet_world(apps: usize, l2: bool) -> (Platform, Vec<AppId>) {
    let mut platform = Platform::new(SearchEngine::new(corpus(Scale::Small))).with_quotas(
        symphony_core::QuotaConfig {
            requests_per_minute: u32::MAX,
            ..symphony_core::QuotaConfig::default()
        },
    );
    if !l2 {
        platform = platform.with_source_cache(symphony_core::SourceCacheConfig::disabled());
    }
    platform
        .transport_mut()
        .register("pricing", Box::new(PricingService), LatencyModel::fast());
    let mut ids = Vec::new();
    for i in 0..apps {
        let (tenant, key) = platform.create_tenant(&format!("Publisher{i}"));
        let (table, _) = ingest("inventory", INVENTORY_CSV, DataFormat::Csv).expect("csv parses");
        let mut indexed = IndexedTable::new(table);
        indexed
            .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
            .expect("columns exist");
        platform.upload_table(tenant, &key, indexed).expect("quota");
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        let item = Element::column(vec![
            Element::text("{title}"),
            Element::result_list("reviews", Element::link_field("url", "{title}"), 3),
            Element::result_list("pricing", Element::text("${price}"), 1),
        ]);
        canvas
            .insert(root, Element::result_list("inventory", item, 10))
            .expect("root");
        let config = AppBuilder::new(&format!("App{i}"), tenant)
            .layout(canvas)
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .source(
                "reviews",
                DataSourceDef::WebVertical {
                    vertical: Vertical::Web,
                    config: SearchConfig::default().restrict_to(REVIEW_SITES),
                },
            )
            .source(
                "pricing",
                DataSourceDef::Service {
                    endpoint: "pricing".into(),
                    operation: "/price".into(),
                    item_param: "item".into(),
                    policy: CallPolicy::default(),
                },
            )
            .supplemental("reviews", "{title} review")
            .supplemental("pricing", "{title}")
            .build()
            .expect("valid app");
        let id = platform.register_app(config).expect("registers");
        platform.publish(id).expect("publishes");
        ids.push(id);
    }
    (platform, ids)
}

/// A fleet of identical apps for the overload experiment, one per
/// tenant, each with its own [`symphony_core::AdmissionPolicy`]
/// (index-matched to `policies`; pass an empty slice for all-unlimited
/// — the AC-off ablation).
///
/// Interaction logging is OFF (millions of modeled sessions must not
/// accumulate an event log), and when `caches` is false both response
/// caches are disabled so every admitted query exercises the execute
/// path — the regime where admission control is load-bearing. With
/// `caches` on, the world measures harness throughput instead.
pub fn overload_fleet_world(
    tenants: usize,
    policies: &[symphony_core::AdmissionPolicy],
    caches: bool,
) -> (Platform, Vec<AppId>) {
    let mut platform = Platform::new(SearchEngine::new(corpus(Scale::Small))).with_quotas(
        symphony_core::QuotaConfig {
            requests_per_minute: u32::MAX,
            cache_ttl_ms: if caches {
                symphony_core::QuotaConfig::default().cache_ttl_ms
            } else {
                0
            },
            ..symphony_core::QuotaConfig::default()
        },
    );
    if !caches {
        platform = platform.with_source_cache(symphony_core::SourceCacheConfig::disabled());
    }
    platform.transport_mut().register(
        "pricing",
        Box::new(PricingService),
        LatencyModel {
            base_ms: 40,
            jitter_ms: 20,
            failure_rate: 0.0,
        },
    );
    let mut ids = Vec::new();
    for i in 0..tenants {
        let (tenant, key) = platform.create_tenant(&format!("Tenant{i}"));
        let (table, _) = ingest("inventory", INVENTORY_CSV, DataFormat::Csv).expect("csv parses");
        let mut indexed = IndexedTable::new(table);
        indexed
            .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
            .expect("columns exist");
        platform.upload_table(tenant, &key, indexed).expect("quota");
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        let item = Element::column(vec![
            Element::text("{title}"),
            Element::result_list("pricing", Element::text("${price}"), 1),
        ]);
        canvas
            .insert(root, Element::result_list("inventory", item, 5))
            .expect("root");
        let config = AppBuilder::new(&format!("App{i}"), tenant)
            .layout(canvas)
            .source(
                "inventory",
                DataSourceDef::Proprietary {
                    table: "inventory".into(),
                },
            )
            .source(
                "pricing",
                DataSourceDef::Service {
                    endpoint: "pricing".into(),
                    operation: "/price".into(),
                    item_param: "item".into(),
                    policy: CallPolicy::default(),
                },
            )
            .supplemental("pricing", "{title}")
            .monetization(symphony_core::MonetizationConfig {
                log_interactions: false,
                publisher: String::new(),
            })
            .admission(policies.get(i).copied().unwrap_or_default())
            .build()
            .expect("valid app");
        let id = platform.register_app(config).expect("registers");
        platform.publish(id).expect("publishes");
        ids.push(id);
    }
    (platform, ids)
}

/// A fleet of web-search tenants behind a shard [`Router`], for
/// experiment E-shard. Each tenant hosts one pure web-vertical app on
/// its rendezvous home shard, and every query scatters across the
/// document-partitioned fleet.
///
/// Both response caches are disabled and interaction logging is off,
/// so each replayed query pays the full scatter-gather path — the
/// regime where document partitioning is load-bearing. Pass a
/// [`FaultPlan`] to schedule shard outages on the inter-node
/// transport (the partial-degrade cell).
pub fn shard_fleet_world(
    num_shards: usize,
    tenants: usize,
    plan: Option<FaultPlan>,
) -> (Router, Vec<AppId>) {
    let corpus = corpus(Scale::Small);
    let router = match plan {
        Some(plan) => Router::with_faults(&corpus, num_shards, 1, 0xE5AD, plan),
        None => Router::new(&corpus, num_shards, 1, 0xE5AD),
    };
    let mut router = router
        .with_quotas(symphony_core::QuotaConfig {
            requests_per_minute: u32::MAX,
            cache_ttl_ms: 0,
            ..symphony_core::QuotaConfig::default()
        })
        .with_source_cache(symphony_core::SourceCacheConfig::disabled());
    let mut ids = Vec::new();
    for i in 0..tenants {
        let name = format!("Tenant{i}");
        router.create_tenant(&name);
        let mut canvas = Canvas::new();
        let root = canvas.root_id();
        canvas
            .insert(
                root,
                Element::result_list("web", Element::link_field("url", "{title}"), 10),
            )
            .expect("root");
        // The owner id is overwritten by the router with the tenant's
        // shard-local id at registration.
        let config = AppBuilder::new(&format!("App{i}"), symphony_store::TenantId(0))
            .layout(canvas)
            .source(
                "web",
                DataSourceDef::WebVertical {
                    vertical: Vertical::Web,
                    config: SearchConfig::default(),
                },
            )
            .monetization(symphony_core::MonetizationConfig {
                log_interactions: false,
                publisher: String::new(),
            })
            .build()
            .expect("valid app");
        let id = router.register_app(&name, config).expect("registers");
        router.publish(id).expect("publishes");
        ids.push(id);
    }
    (router, ids)
}

/// `p`-th percentile (0.0–1.0) of an unsorted latency sample.
pub fn percentile(samples: &[u32], p: f64) -> u32 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Zipf-distributed query stream over the scenario's evaluation
/// queries plus topical filler (for the E2 cache experiment).
pub fn zipf_queries(n: usize, skew: f64, seed: u64) -> Vec<String> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let pool: Vec<String> = symphony_baselines::EVAL_QUERIES
        .iter()
        .map(|(q, _)| q.to_string())
        .chain(
            Topic::Games
                .words()
                .iter()
                .take(30)
                .map(|w| format!("{w} game")),
        )
        .collect();
    let zipf = symphony_web::zipf::Zipf::new(pool.len(), skew);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| pool[zipf.sample(&mut rng)].clone())
        .collect()
}

/// Simple aligned table printer for experiment output.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<&str>| {
        let mut s = String::new();
        for (c, w) in cells.iter().zip(&widths) {
            s.push_str(&format!("| {:w$} ", c, w = w));
        }
        s.push('|');
        println!("{s}");
    };
    line(headers.to_vec());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(sep.iter().map(String::as_str).collect());
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builder_produces_working_platform() {
        let (platform, id) = gamer_queen_world(WorldOptions {
            scale: Scale::Small,
            ..WorldOptions::default()
        });
        let resp = platform.query(id, "space shooter").unwrap();
        assert!(resp.html.contains("Galactic Raiders"));
    }

    #[test]
    fn supplemental_source_count_controls_layout() {
        for n in 0..=4 {
            let (platform, id) = gamer_queen_world(WorldOptions {
                scale: Scale::Small,
                supplemental_sources: n,
                ..WorldOptions::default()
            });
            let app = platform.app(id).unwrap();
            assert_eq!(app.supplemental_sources().len(), n);
        }
    }

    #[test]
    fn shared_l2_strictly_dominates_l1_only_on_the_fleet() {
        let queries = zipf_queries(120, 1.0, 23);
        let run = |l2: bool| -> (u64, symphony_core::SourceCacheStats) {
            let (platform, ids) = shared_fleet_world(4, l2);
            let mut total_ms = 0u64;
            for (i, q) in queries.iter().enumerate() {
                let resp = platform.query(ids[i % ids.len()], q).expect("ok");
                total_ms += resp.virtual_ms as u64;
            }
            (total_ms, platform.source_cache_stats())
        };
        let (l1_ms, l1_stats) = run(false);
        let (l2_ms, l2_stats) = run(true);
        assert!(
            l2_ms < l1_ms,
            "L2 must strictly reduce total virtual time: {l2_ms} vs {l1_ms}"
        );
        // The disabled cache records nothing; the enabled one must
        // have actually served cross-app fetches.
        assert_eq!(l1_stats.executions, 0);
        assert!(l2_stats.hits > 0, "cross-app hits expected: {l2_stats:?}");
        assert!(l2_stats.executions > 0);
    }

    #[test]
    fn zipf_queries_are_skewed_and_deterministic() {
        let a = zipf_queries(200, 1.2, 9);
        let b = zipf_queries(200, 1.2, 9);
        assert_eq!(a, b);
        let mut counts = std::collections::HashMap::new();
        for q in &a {
            *counts.entry(q.clone()).or_insert(0usize) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 20, "head query should dominate, max={max}");
    }
}
