//! Open-loop traffic generation and replay for the overload harness.
//!
//! The generator models customer *sessions* — a tenant choice (Zipf
//! popularity), a handful of queries spaced by think time, and
//! position-biased clicks — and lays their arrivals on the virtual
//! clock with a compressed diurnal density plus optional burst
//! windows. Arrivals are open-loop: they carry timestamps fixed at
//! generation time, so a saturated platform cannot slow the offered
//! load down — exactly the regime where admission control must step
//! in (closed-loop harnesses self-throttle and hide overload).
//!
//! Replay drives a single-server queue on the platform's virtual
//! clock: the clock is the server's completion time, an arrival in
//! the future idles the server forward, and an arrival in the past
//! has been waiting since its timestamp. Reported latency is
//! `wait + service`, so queue collapse shows up as unbounded p99s
//! rather than as a quietly stretched run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symphony_core::hosting::QueryHost;
use symphony_core::AppId;

/// A burst window: extra sessions for one tenant inside a slice of the
/// run (a flash crowd, a misbehaving integration, a retry storm).
#[derive(Debug, Clone, Copy)]
pub struct BurstWindow {
    /// Which tenant bursts.
    pub tenant: usize,
    /// Window start, virtual ms.
    pub start_ms: u64,
    /// Window end, virtual ms.
    pub end_ms: u64,
    /// Extra sessions injected inside the window, on top of the
    /// tenant's organic share.
    pub extra_sessions: usize,
}

/// Traffic-shape configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of tenants (apps) receiving traffic.
    pub tenants: usize,
    /// Sessions to model (each contributes 1–4 query arrivals).
    pub sessions: usize,
    /// Zipf skew of tenant popularity (0 = uniform).
    pub tenant_skew: f64,
    /// Virtual span the organic sessions start within.
    pub duration_ms: u64,
    /// Diurnal amplitude in `[0, 1)`: arrival density follows
    /// `1 + a·sin(2π·t/duration)` — one compressed day per run.
    pub diurnal_amplitude: f64,
    /// Distinct query texts in the pool (Zipf-skewed popularity).
    pub query_pool: usize,
    /// Click probability at position 0; position `p` clicks with
    /// probability `click_base / (p + 1)`.
    pub click_base: f64,
    /// Burst windows to overlay.
    pub bursts: Vec<BurstWindow>,
    /// Generator seed (same seed → identical arrival vector).
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            tenants: 6,
            sessions: 10_000,
            tenant_skew: 0.8,
            duration_ms: 600_000,
            diurnal_amplitude: 0.3,
            query_pool: 40,
            click_base: 0.3,
            bursts: Vec::new(),
            seed: 0xBEEF,
        }
    }
}

/// One query arrival, compact enough to hold millions in memory:
/// 16 bytes each, with the query as an index into the shared pool and
/// the session's clicks as a position bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival timestamp on the virtual clock.
    pub at_ms: u64,
    /// Tenant (index into the replayed app list).
    pub tenant: u16,
    /// Query index into the pool.
    pub query: u16,
    /// Bit `p` set = the session clicks the impression at position `p`
    /// (applied only if the response actually renders that position).
    pub clicks: u8,
}

/// Generate the open-loop arrival schedule: deterministic in the seed,
/// sorted by arrival time.
pub fn generate(config: &TrafficConfig) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tenant_zipf = symphony_web::zipf::Zipf::new(config.tenants.max(1), config.tenant_skew);
    let query_zipf = symphony_web::zipf::Zipf::new(config.query_pool.max(1), 1.0);
    let mut arrivals = Vec::with_capacity(config.sessions * 2);
    let session = |rng: &mut StdRng, tenant: usize, start: u64, arrivals: &mut Vec<Arrival>| {
        let queries = 1 + rng.gen_range(0..4).min(rng.gen_range(0..4)); // mean ≈ 2
        let mut at = start;
        let mut clicks = 0u8;
        for p in 0..8 {
            if rng.gen_bool(config.click_base / (p as f64 + 1.0)) {
                clicks |= 1 << p;
            }
        }
        for _ in 0..queries {
            arrivals.push(Arrival {
                at_ms: at,
                tenant: tenant as u16,
                query: query_zipf.sample(rng) as u16,
                clicks,
            });
            at += rng.gen_range(800..3_000); // think time
        }
    };
    // Organic sessions: diurnal start times by rejection sampling.
    for _ in 0..config.sessions {
        let tenant = tenant_zipf.sample(&mut rng);
        let start = loop {
            let t = rng.gen_range(0..config.duration_ms.max(1));
            let phase = t as f64 / config.duration_ms.max(1) as f64;
            let density = 1.0 + config.diurnal_amplitude * (phase * std::f64::consts::TAU).sin();
            if rng.gen_bool((density / (1.0 + config.diurnal_amplitude)).clamp(0.0, 1.0)) {
                break t;
            }
        };
        session(&mut rng, tenant, start, &mut arrivals);
    }
    // Burst overlays: uniform inside their windows.
    for burst in &config.bursts {
        for _ in 0..burst.extra_sessions {
            let start = rng.gen_range(burst.start_ms..burst.end_ms.max(burst.start_ms + 1));
            session(&mut rng, burst.tenant, start, &mut arrivals);
        }
    }
    arrivals.sort_by_key(|a| a.at_ms);
    arrivals
}

/// Per-tenant replay outcome.
#[derive(Debug, Clone, Default)]
pub struct TenantOutcome {
    /// Queries offered (arrivals replayed).
    pub offered: u64,
    /// Queries served for real (includes degraded, excludes shed).
    pub served: u64,
    /// Queries shed by admission control.
    pub shed: u64,
    /// End-to-end latency (queue wait + service) of each served query,
    /// virtual ms.
    pub latencies: Vec<u32>,
}

/// Aggregate replay outcome.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Per-tenant breakdown, indexed like the replayed app list.
    pub tenants: Vec<TenantOutcome>,
    /// Total queries served for real.
    pub served: u64,
    /// Total queries shed.
    pub shed: u64,
    /// Served queries whose response was degraded.
    pub degraded: u64,
    /// Clicks delivered back to the platform.
    pub clicks: u64,
    /// Virtual span of the replay (first arrival → last completion).
    pub span_ms: u64,
}

impl ReplayReport {
    /// Served queries per virtual second — the goodput the SLO
    /// assertions compare against capacity.
    pub fn goodput_qps(&self) -> f64 {
        if self.span_ms == 0 {
            return 0.0;
        }
        self.served as f64 * 1000.0 / self.span_ms as f64
    }

    /// All served latencies pooled (for whole-run percentiles).
    pub fn all_latencies(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.served as usize);
        for t in &self.tenants {
            out.extend_from_slice(&t.latencies);
        }
        out
    }
}

/// Replay an arrival schedule against any [`QueryHost`] — a single
/// [`Platform`](symphony_core::hosting::Platform) or a sharded
/// [`Router`] — under open-loop queue semantics (see the module docs).
/// Each tenant queues on its app's serving clock, so a multi-shard
/// host replays as N parallel single-server queues while a platform
/// keeps the original single-queue behaviour. `clicks = true` delivers
/// each session's position-biased clicks for served responses.
///
/// `window` optionally restricts *measurement* to arrivals stamped in
/// `[start, end)`: everything is still replayed (so buckets, caches,
/// and the queue stay warm), but arrivals outside the window update no
/// counters and deliver no clicks, and the reported span is the window
/// itself. This is how the overload experiment excludes the cold-start
/// transient (full buckets admit one burst for free) and the
/// think-time straggler tail.
pub fn replay<H: QueryHost + ?Sized>(
    host: &H,
    apps: &[AppId],
    queries: &[String],
    arrivals: &[Arrival],
    clicks: bool,
    window: Option<(u64, u64)>,
) -> ReplayReport {
    let mut report = ReplayReport {
        tenants: vec![TenantOutcome::default(); apps.len()],
        ..ReplayReport::default()
    };
    let started = arrivals.first().map_or(0, |a| a.at_ms);
    for a in arrivals {
        let tenant = a.tenant as usize % apps.len().max(1);
        let query = &queries[a.query as usize % queries.len().max(1)];
        let now = host.host_clock_ms(apps[tenant]);
        let wait = if now < a.at_ms {
            // Server idle: jump to the arrival instant.
            host.host_advance_clock(apps[tenant], a.at_ms - now);
            0
        } else {
            now - a.at_ms
        };
        let resp = host.host_query(apps[tenant], query).expect("replay query");
        if let Some((from, until)) = window {
            if a.at_ms < from || a.at_ms >= until {
                continue;
            }
        }
        let out = &mut report.tenants[tenant];
        out.offered += 1;
        if resp.trace.shed {
            out.shed += 1;
            report.shed += 1;
            continue;
        }
        out.served += 1;
        report.served += 1;
        if resp.trace.degraded {
            report.degraded += 1;
        }
        out.latencies
            .push((wait + resp.virtual_ms as u64).min(u32::MAX as u64) as u32);
        if clicks && a.clicks != 0 && !resp.impressions.is_empty() {
            for p in 0..8usize {
                if a.clicks & (1 << p) != 0
                    && p < resp.impressions.len()
                    && host
                        .host_click(apps[tenant], query, &resp.impressions[p])
                        .is_ok()
                {
                    report.clicks += 1;
                }
            }
        }
    }
    report.span_ms = match window {
        Some((from, until)) => until.saturating_sub(from),
        None => host.host_span_end().saturating_sub(started),
    };
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let config = TrafficConfig {
            sessions: 500,
            ..TrafficConfig::default()
        };
        assert_eq!(generate(&config), generate(&config));
        let other = TrafficConfig {
            seed: 1,
            ..config.clone()
        };
        assert_ne!(generate(&config), generate(&other));
    }

    #[test]
    fn arrivals_are_sorted_and_sessions_average_about_two_queries() {
        let config = TrafficConfig {
            sessions: 2_000,
            ..TrafficConfig::default()
        };
        let arrivals = generate(&config);
        assert!(arrivals.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        let per_session = arrivals.len() as f64 / config.sessions as f64;
        assert!(
            (1.2..=2.8).contains(&per_session),
            "queries per session: {per_session}"
        );
    }

    #[test]
    fn tenant_popularity_is_zipf_skewed() {
        let config = TrafficConfig {
            sessions: 4_000,
            tenant_skew: 1.0,
            ..TrafficConfig::default()
        };
        let arrivals = generate(&config);
        let mut counts = vec![0u64; config.tenants];
        for a in &arrivals {
            counts[a.tenant as usize] += 1;
        }
        assert!(
            counts[0] > counts[config.tenants - 1] * 2,
            "head tenant should dominate: {counts:?}"
        );
    }

    #[test]
    fn burst_window_adds_arrivals_only_inside_the_window() {
        let base = TrafficConfig {
            sessions: 1_000,
            ..TrafficConfig::default()
        };
        let mut bursty = base.clone();
        bursty.bursts = vec![BurstWindow {
            tenant: 2,
            start_ms: 100_000,
            end_ms: 200_000,
            extra_sessions: 2_000,
        }];
        let plain = generate(&base);
        let with_burst = generate(&bursty);
        assert!(with_burst.len() > plain.len());
        // Every extra tenant-2 arrival starts in (or trails a session
        // started in) the window; starts before it are impossible.
        let early = with_burst
            .iter()
            .filter(|a| a.tenant == 2 && a.at_ms < 100_000)
            .count();
        let plain_early = plain
            .iter()
            .filter(|a| a.tenant == 2 && a.at_ms < 100_000)
            .count();
        assert_eq!(early, plain_early, "burst leaked before its window");
        let in_window = with_burst
            .iter()
            .filter(|a| a.tenant == 2 && (100_000..200_000).contains(&a.at_ms))
            .count();
        assert!(in_window >= 2_000, "burst arrivals missing: {in_window}");
    }

    #[test]
    fn clicks_are_position_biased() {
        let config = TrafficConfig {
            sessions: 5_000,
            click_base: 0.5,
            ..TrafficConfig::default()
        };
        let arrivals = generate(&config);
        let pos0 = arrivals.iter().filter(|a| a.clicks & 1 != 0).count();
        let pos3 = arrivals.iter().filter(|a| a.clicks & (1 << 3) != 0).count();
        assert!(
            pos0 > pos3 * 2,
            "position 0 should far out-click position 3: {pos0} vs {pos3}"
        );
    }

    #[test]
    fn diurnal_density_peaks_in_the_first_half() {
        // sin() is positive over the first half-cycle: with a strong
        // amplitude, clearly more sessions start there.
        let config = TrafficConfig {
            sessions: 4_000,
            diurnal_amplitude: 0.9,
            ..TrafficConfig::default()
        };
        let arrivals = generate(&config);
        let half = config.duration_ms / 2;
        let first = arrivals.iter().filter(|a| a.at_ms < half).count();
        let second = arrivals.len() - first;
        assert!(
            first as f64 > second as f64 * 1.3,
            "diurnal peak missing: {first} vs {second}"
        );
    }
}
