//! Regenerate the paper's **Fig. 2**: "Query Execution in Symphony".
//!
//! The figure's flow: the customer's query enters through the
//! embedded JavaScript on GamerQueen's page, the Symphony runtime
//! queries the primary content (Ann's inventory), fans out the
//! supplemental sources (focused web search for reviews, the pricing
//! service) using fields from each primary result, merges and formats
//! HTML, and returns it to the page. This binary executes that flow
//! with tracing on and prints each arrow of the figure with its
//! virtual timing. Run with:
//!
//! ```text
//! cargo run -p symphony-bench --bin fig2
//! ```

use symphony_bench::{gamer_queen_world, Scale, WorldOptions};
use symphony_core::runtime::ExecMode;

fn main() {
    println!("FIG. 2 — QUERY EXECUTION IN SYMPHONY (live trace)\n");

    let (platform, app) = gamer_queen_world(WorldOptions {
        scale: Scale::Medium,
        mode: ExecMode::Parallel,
        supplemental_sources: 2,
        primary_k: 10,
    });

    println!("[1] The GamerQueen page embeds the auto-generated snippet:");
    let embed = platform.embed_code(app).expect("app exists");
    for line in embed.lines().take(6) {
        println!("      {line}");
    }
    println!("      …\n");

    println!("[2] Customer submits the query \"space shooter\"; the snippet");
    println!("    forwards it to Symphony for processing.\n");

    let resp = platform.query(app, "space shooter").expect("published");

    println!("[3] Runtime trace (primary -> supplemental fan-out -> merge):\n");
    println!("{}", resp.trace.render());

    println!("[4] The resulting HTML is sent back to the embedded JavaScript,");
    println!("    which injects it into the GamerQueen page:");
    println!(
        "      {} bytes of HTML, {} result impressions",
        resp.html.len(),
        resp.impressions.len()
    );
    let preview: String = resp.html.chars().take(400).collect();
    println!("      preview: {preview}…\n");

    println!("[5] Same query again — served from the result cache:");
    let cached = platform.query(app, "space shooter").expect("published");
    println!("{}", cached.trace.render());

    println!("[6] Ablation — the same request with sequential fan-out");
    println!("    (what a client-side mashup without Symphony's hosted");
    println!("    parallelism would pay):\n");
    let (seq_platform, seq_app) = gamer_queen_world(WorldOptions {
        scale: Scale::Medium,
        mode: ExecMode::Sequential,
        supplemental_sources: 2,
        primary_k: 10,
    });
    let seq = seq_platform
        .query(seq_app, "space shooter")
        .expect("published");
    println!(
    "    parallel total: {:>5} virtual ms\n    sequential total: {:>3} virtual ms\n    speedup: {:.1}x",
        resp.virtual_ms,
        seq.virtual_ms,
        seq.virtual_ms as f64 / resp.virtual_ms.max(1) as f64
    );
}
