//! Run the quantitative experiments E1–E10 from DESIGN.md and print
//! their tables (EXPERIMENTS.md records a reference run).
//!
//! The paper itself reports no measurements; these experiments measure
//! the design properties the paper asserts. Virtual-clock numbers are
//! deterministic; wall-clock numbers vary with the host.
//!
//! ```text
//! cargo run --release -p symphony-bench --bin experiments
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use symphony_baselines::{
    ndcg_at_k, BossModel, EureksterModel, GoogleBaseModel, GoogleCustomModel, RollyoModel,
    Scenario, SymphonyModel, SystemModel, EVAL_QUERIES,
};
use symphony_bench::traffic::{generate, replay, Arrival, BurstWindow, TrafficConfig};
use symphony_bench::{
    corpus, gamer_queen_world, overload_fleet_world, percentile, print_table, resilience_world,
    shard_fleet_world, shared_fleet_world, zipf_queries, ResilienceOptions, Scale, WorldOptions,
};
use symphony_core::hosting::QuotaConfig;
use symphony_core::runtime::ExecMode;
use symphony_core::ScatterSearch;
use symphony_services::rpc::{replica_endpoint, shard_endpoint};
use symphony_services::FaultPlan;
use symphony_store::{
    CmpOp, FieldType, Filter, HybridPlan, HybridQuery, HybridResult, IndexKind, IndexedTable,
    Record, Schema, Table, Value,
};
use symphony_text::{Analyzer, Doc, Index, IndexConfig, Query, StandardAnalyzer, TokenScratch};
use symphony_web::{
    generate_logs, LogConfig, SearchConfig, SearchEngine, SiteSuggest, Topic, Vertical,
};

/// Allocation-counting wrapper around the system allocator, so E-build
/// can report allocations per document without external tooling.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter
// is a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    // An optional argument selects one experiment by name (the CI
    // smoke step runs `experiments e-ingest` alone); with no argument
    // everything runs.
    let only = std::env::args().nth(1);
    let run = |name: &str| only.as_deref().is_none_or(|o| o == name);
    if only.is_none() {
        println!("SYMPHONY REPRODUCTION — EXPERIMENTS E1..E10");
        println!("(shapes are the claims; absolute numbers are simulator-specific)");
    }
    if run("e1") {
        e1_fanout();
    }
    if run("e2") {
        e2_cache();
    }
    if run("e-cache") {
        e_cache_l2();
    }
    if run("e3") {
        e3_index_build();
    }
    if run("e-build") {
        e_build();
    }
    if run("e4") {
        e4_query_latency();
    }
    if run("e5") {
        e5_quality();
    }
    if run("e6") {
        e6_auction();
    }
    if run("e7") {
        e7_site_suggest();
    }
    if run("e8") {
        e8_tenancy();
    }
    if run("e9") {
        e9_click_feedback();
    }
    if run("e10") {
        e10_recommendation();
    }
    if run("e-resilience") {
        e_resilience();
    }
    if run("e-ingest") {
        e_ingest();
    }
    if run("e-postings") {
        e_postings();
    }
    if run("e-overload") {
        e_overload();
    }
    if run("e-shard") {
        e_shard();
    }
    if run("e-hybrid") {
        e_hybrid();
    }
}

/// E1: parallel vs sequential supplemental fan-out.
fn e1_fanout() {
    let mut rows = Vec::new();
    for sources in 1..=4usize {
        let mut virt = [0u32; 2];
        for (i, mode) in [ExecMode::Parallel, ExecMode::Sequential]
            .into_iter()
            .enumerate()
        {
            let (platform, app) = gamer_queen_world(WorldOptions {
                scale: Scale::Small,
                mode,
                supplemental_sources: sources,
                primary_k: 10,
            });
            virt[i] = platform.query(app, "space shooter").expect("ok").virtual_ms;
        }
        rows.push(vec![
            sources.to_string(),
            virt[0].to_string(),
            virt[1].to_string(),
            format!("{:.1}x", virt[1] as f64 / virt[0].max(1) as f64),
        ]);
    }
    print_table(
        "E1 — supplemental fan-out: parallel vs sequential (virtual ms)",
        &["suppl sources", "parallel", "sequential", "speedup"],
        &rows,
    );
}

/// E2: result-cache ablation under Zipf skew.
fn e2_cache() {
    let mut rows = Vec::new();
    for skew in [0.6, 1.0, 1.4] {
        let queries = zipf_queries(300, skew, 11);
        // With cache (default TTL). The L2 source cache is disabled in
        // both rows: E2 isolates the per-app L1 response cache; the
        // shared L2 gets its own experiment (E-cache).
        let (with_cache, app) = gamer_queen_world(WorldOptions {
            scale: Scale::Small,
            ..WorldOptions::default()
        });
        let with_cache = with_cache.with_source_cache(symphony_core::SourceCacheConfig::disabled());
        let mut total_ms = 0u64;
        for q in &queries {
            total_ms += with_cache.query(app, q).expect("ok").virtual_ms as u64;
        }
        let stats = with_cache.cache_stats(app).expect("exists");
        // Without cache: a world built with zero TTL from the start
        // (the quota config is captured at app registration).
        let (no_cache, app2) = gamer_queen_world_no_cache();
        let mut nc_total_ms = 0u64;
        for q in &queries {
            nc_total_ms += no_cache.query(app2, q).expect("ok").virtual_ms as u64;
        }
        rows.push(vec![
            format!("{skew:.1}"),
            format!("{:.0}%", stats.hit_rate() * 100.0),
            format!("{:.1}", total_ms as f64 / queries.len() as f64),
            format!("{:.1}", nc_total_ms as f64 / queries.len() as f64),
        ]);
    }
    print_table(
        "E2 — result cache under Zipf query skew (300 queries)",
        &[
            "zipf s",
            "hit rate",
            "mean ms (cache)",
            "mean ms (no cache)",
        ],
        &rows,
    );
}

/// E-cache: the platform-wide L2 source cache vs the per-app L1
/// alone. Eight structurally-identical apps on separate tenants share
/// the review vertical and the pricing endpoint; a Zipf stream is
/// round-robined across them, so the L1 only helps when the *same*
/// app sees a repeat while the L2 reuses any app's fetches.
fn e_cache_l2() {
    let queries = zipf_queries(400, 1.0, 23);
    let mut rows = Vec::new();
    for (label, l2) in [("L1 only", false), ("L1+L2", true)] {
        let (platform, ids) = shared_fleet_world(8, l2);
        let mut lat = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            lat.push(
                platform
                    .query(ids[i % ids.len()], q)
                    .expect("ok")
                    .virtual_ms,
            );
        }
        let (mut l1_hits, mut l1_lookups) = (0u64, 0u64);
        for &id in &ids {
            let s = platform.cache_stats(id).expect("exists");
            l1_hits += s.hits;
            l1_lookups += s.hits + s.misses;
        }
        let s2 = platform.source_cache_stats();
        let avoided = s2.hits + s2.negative_hits + s2.coalesced;
        let mean = lat.iter().map(|&v| v as u64).sum::<u64>() as f64 / lat.len() as f64;
        let dash = || "-".to_string();
        rows.push(vec![
            label.to_string(),
            format!("{:.0}%", l1_hits as f64 / l1_lookups.max(1) as f64 * 100.0),
            if l2 {
                format!("{:.0}%", s2.hit_rate() * 100.0)
            } else {
                dash()
            },
            if l2 {
                s2.executions.to_string()
            } else {
                dash()
            },
            if l2 { avoided.to_string() } else { dash() },
            if l2 { s2.coalesced.to_string() } else { dash() },
            format!("{mean:.1}"),
            percentile(&lat, 0.5).to_string(),
            percentile(&lat, 0.99).to_string(),
        ]);
    }
    print_table(
        "E-cache — shared L2 source cache, 8-app fleet (400 Zipf queries, s=1.0)",
        &[
            "config",
            "L1 hit",
            "L2 hit",
            "src execs",
            "fetches avoided",
            "coalesced",
            "mean ms",
            "p50",
            "p99",
        ],
        &rows,
    );
}

fn gamer_queen_world_no_cache() -> (symphony_core::Platform, symphony_core::AppId) {
    // A world whose app cache expires instantly (TTL 0) and whose L2
    // source cache is off; the quota must be set before app
    // registration, so this builds manually.
    use symphony_core::hosting::Platform;
    let mut p = Platform::new(SearchEngine::new(corpus(Scale::Small)))
        .with_quotas(QuotaConfig {
            cache_ttl_ms: 0,
            requests_per_minute: 1_000_000,
            ..QuotaConfig::default()
        })
        .with_source_cache(symphony_core::SourceCacheConfig::disabled());
    let (tenant, key) = p.create_tenant("GamerQueen");
    let (table, _) = symphony_store::ingest::ingest(
        "inventory",
        symphony_bench::INVENTORY_CSV,
        symphony_store::DataFormat::Csv,
    )
    .expect("parses");
    let mut indexed = symphony_store::IndexedTable::new(table);
    indexed
        .enable_fulltext(&[("title", 2.0), ("genre", 1.0), ("description", 1.0)])
        .expect("columns");
    p.upload_table(tenant, &key, indexed).expect("quota");
    p.transport_mut().register(
        "pricing",
        Box::new(symphony_services::PricingService),
        symphony_services::LatencyModel::fast(),
    );
    use symphony_core::app::AppBuilder;
    use symphony_core::source::DataSourceDef;
    use symphony_designer::{Canvas, Element};
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    let item = Element::column(vec![
        Element::text("{title}"),
        Element::result_list("reviews", Element::link_field("url", "{title}"), 3),
        Element::result_list("pricing", Element::text("${price}"), 1),
    ]);
    canvas
        .insert(root, Element::result_list("inventory", item, 10))
        .expect("root");
    let config = AppBuilder::new("GamerQueen", tenant)
        .layout(canvas)
        .source(
            "inventory",
            DataSourceDef::Proprietary {
                table: "inventory".into(),
            },
        )
        .source(
            "reviews",
            DataSourceDef::WebVertical {
                vertical: symphony_web::Vertical::Web,
                config: symphony_web::SearchConfig::default()
                    .restrict_to(symphony_bench::REVIEW_SITES),
            },
        )
        .source(
            "pricing",
            DataSourceDef::Service {
                endpoint: "pricing".into(),
                operation: "/price".into(),
                item_param: "item".into(),
                policy: symphony_services::CallPolicy::default(),
            },
        )
        .supplemental("reviews", "{title} review")
        .supplemental("pricing", "{title}")
        .build()
        .expect("valid");
    let id = p.register_app(config).expect("registers");
    p.publish(id).expect("publishes");
    (p, id)
}

/// E3: index build throughput + compressed vs raw posting space.
fn e3_index_build() {
    let mut rows = Vec::new();
    for scale in [Scale::Small, Scale::Medium, Scale::Large] {
        let corpus = corpus(scale);
        let pages = corpus.pages.len();
        let start = Instant::now();
        let mut index = Index::new(IndexConfig::default());
        let title = index.register_field("title", 2.0);
        let body = index.register_field("body", 1.0);
        for p in &corpus.pages {
            index.add(Doc::new().field(title, &*p.title).field(body, &*p.body));
        }
        let build = start.elapsed();
        let raw_bytes = index.stats().postings_bytes;
        let start = Instant::now();
        index.optimize();
        let optimize = start.elapsed();
        let compressed_bytes = index.stats().postings_bytes;
        rows.push(vec![
            format!("{} ({pages} pages)", scale.label()),
            format!("{:.1}", build.as_secs_f64() * 1e3),
            format!("{:.1}", optimize.as_secs_f64() * 1e3),
            format!("{}", raw_bytes / 1024),
            format!("{}", compressed_bytes / 1024),
            format!("{:.1}x", raw_bytes as f64 / compressed_bytes.max(1) as f64),
        ]);
    }
    print_table(
        "E3 — index build and posting compression",
        &[
            "corpus",
            "build ms",
            "optimize ms",
            "raw KiB",
            "compressed KiB",
            "ratio",
        ],
        &rows,
    );
}

/// E-build: segmented parallel index build, allocation-lean analysis
/// chain, and engine cold start. Wall-clock scaling depends on the
/// host's core count (reported in the table titles); the differential
/// tests guarantee every thread count builds a bit-identical index, so
/// rows are directly comparable.
fn e_build() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Allocations per document in the analysis chain: owned tokens
    // (the pre-streaming path) vs borrowed terms through a reused
    // scratch (what the build runs on).
    let c = corpus(Scale::Medium);
    let analyzer = StandardAnalyzer::new();
    let docs = c.pages.len() as u64;
    let before = allocations();
    let mut out = Vec::new();
    for p in &c.pages {
        out.clear();
        analyzer.analyze_into(&p.body, &mut out);
        std::hint::black_box(out.len());
    }
    let owned = allocations() - before;
    let before = allocations();
    let mut scratch = TokenScratch::default();
    let mut tokens = 0u64;
    for p in &c.pages {
        analyzer.analyze_with(&p.body, &mut scratch, &mut |_, _, _, _| tokens += 1);
    }
    std::hint::black_box(tokens);
    let streaming = allocations() - before;
    print_table(
        &format!("E-build — analysis allocations per document ({docs} docs)"),
        &["path", "allocs/doc", "total allocs"],
        &[
            vec![
                "owned tokens".into(),
                format!("{:.1}", owned as f64 / docs as f64),
                owned.to_string(),
            ],
            vec![
                "streaming scratch".into(),
                format!("{:.1}", streaming as f64 / docs as f64),
                streaming.to_string(),
            ],
        ],
    );

    // Parallel build wall-clock at 1/2/4/8 threads (best of 5).
    let c = corpus(Scale::Large);
    let pages: Vec<(String, String)> = c
        .pages
        .iter()
        .map(|p| (p.title.clone(), p.body.clone()))
        .collect();
    let mut rows = Vec::new();
    let mut baseline = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let mut best = f64::MAX;
        for _ in 0..5 {
            let start = Instant::now();
            let mut index = Index::new(IndexConfig::default());
            let title = index.register_field("title", 2.0);
            let body = index.register_field("body", 1.0);
            let batch: Vec<Doc> = pages
                .iter()
                .map(|(t, b)| Doc::new().field(title, t.clone()).field(body, b.clone()))
                .collect();
            index.build_parallel(batch, threads);
            std::hint::black_box(index.total_docs());
            best = best.min(start.elapsed().as_secs_f64());
        }
        if threads == 1 {
            baseline = best;
        }
        rows.push(vec![
            threads.to_string(),
            format!("{:.2}", best * 1e3),
            format!("{:.2}x", baseline / best),
        ]);
    }
    print_table(
        &format!(
            "E-build — parallel segmented build, {} pages ({cores} core(s) available)",
            pages.len()
        ),
        &["threads", "build ms", "speedup"],
        &rows,
    );

    // Engine cold start: sequential boot vs concurrent verticals.
    let mut rows = Vec::new();
    for (label, threads) in [("sequential", 1usize), ("parallel (8)", 8)] {
        let mut best = f64::MAX;
        for _ in 0..3 {
            let corpus = corpus(Scale::Large);
            let start = Instant::now();
            std::hint::black_box(SearchEngine::with_build_threads(corpus, threads));
            best = best.min(start.elapsed().as_secs_f64());
        }
        rows.push(vec![label.to_string(), format!("{:.1}", best * 1e3)]);
    }
    print_table(
        &format!("E-build — SearchEngine cold start, large corpus ({cores} core(s) available)"),
        &["boot path", "ms"],
        &rows,
    );
}

/// E4: BM25 top-10 query latency vs corpus size.
fn e4_query_latency() {
    let mut rows = Vec::new();
    for scale in [Scale::Small, Scale::Medium, Scale::Large] {
        let engine = SearchEngine::new(corpus(scale));
        let queries = zipf_queries(200, 1.0, 3);
        let start = Instant::now();
        let mut hits = 0usize;
        for q in &queries {
            hits += engine
                .search(
                    symphony_web::Vertical::Web,
                    q,
                    &symphony_web::SearchConfig::default(),
                    10,
                )
                .len();
        }
        let elapsed = start.elapsed();
        rows.push(vec![
            scale.label().to_string(),
            format!("{}", engine.doc_count(symphony_web::Vertical::Web)),
            format!("{:.0}", elapsed.as_secs_f64() * 1e6 / queries.len() as f64),
            format!("{:.1}", hits as f64 / queries.len() as f64),
        ]);
    }
    print_table(
        "E4 — web-vertical query latency (200 Zipf queries, top-10)",
        &["corpus", "web docs", "mean µs/query", "mean hits"],
        &rows,
    );
}

/// E5: integration quality vs every baseline (NDCG@10).
fn e5_quality() {
    let scenario = Scenario::new(3, 6);
    let mut models: Vec<Box<dyn SystemModel>> = vec![
        Box::new(SymphonyModel::new(&scenario)),
        Box::new(BossModel::new(scenario.engine.clone())),
        Box::new(RollyoModel::new(scenario.engine.clone())),
        Box::new(EureksterModel::new(scenario.engine.clone())),
        Box::new(GoogleCustomModel::new(scenario.engine.clone())),
        Box::new(GoogleBaseModel::new(scenario.engine.clone())),
    ];
    let mut rows = Vec::new();
    for m in &mut models {
        let mut per_query = Vec::new();
        for (query, target) in EVAL_QUERIES {
            let results = m.answer(query, 10);
            per_query.push(ndcg_at_k(&results, target, 10));
        }
        let mean = per_query.iter().sum::<f64>() / per_query.len() as f64;
        rows.push(vec![
            m.name().to_string(),
            format!("{mean:.3}"),
            per_query
                .iter()
                .map(|s| format!("{s:.2}"))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    print_table(
        "E5 — GamerQueen scenario quality, NDCG@10 vs constructed ideal",
        &["system", "mean", "per-query"],
        &rows,
    );
}

/// E6: ad auction + billing throughput.
fn e6_auction() {
    use symphony_ads::{Ad, AdServer, Keyword, MatchType};
    let mut rows = Vec::new();
    for n in [10usize, 100, 1000] {
        let mut ads = AdServer::new();
        let adv = ads.add_advertiser("A");
        for i in 0..n {
            let word = Topic::Games.words()[i % Topic::Games.words().len()];
            ads.add_campaign(
                adv,
                &format!("c{i}"),
                1_000_000,
                vec![Keyword::new(word, MatchType::Broad, 10 + (i as u32 % 90))],
                Ad {
                    title: format!("ad {i}"),
                    display_url: "d".into(),
                    target_url: format!("http://a{i}.example.com"),
                    text: "x".into(),
                },
                0.3 + (i as f64 % 7.0) / 10.0,
            );
        }
        let start = Instant::now();
        let rounds = 2_000;
        let mut placements = 0usize;
        for i in 0..rounds {
            let q = format!(
                "{} game",
                Topic::Games.words()[i % Topic::Games.words().len()]
            );
            placements += ads.select(&q, 3).len();
        }
        let select_elapsed = start.elapsed();
        // Billing throughput.
        let ps = ads.select("game review", 3);
        let start = Instant::now();
        let mut billed = 0usize;
        if let Some(p) = ps.first() {
            for _ in 0..10_000 {
                if ads.record_click(p, "pub").is_ok() {
                    billed += 1;
                }
            }
        }
        let bill_elapsed = start.elapsed();
        rows.push(vec![
            n.to_string(),
            format!("{:.0}", rounds as f64 / select_elapsed.as_secs_f64()),
            format!("{:.1}", placements as f64 / rounds as f64),
            format!(
                "{:.0}",
                billed as f64 / bill_elapsed.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print_table(
        "E6 — ad auction and billing throughput",
        &[
            "campaigns",
            "auctions/s",
            "mean placements",
            "billed clicks/s",
        ],
        &rows,
    );
}

/// E7: Site Suggest precision vs click-log size.
fn e7_site_suggest() {
    let engine = SearchEngine::new(corpus(Scale::Medium));
    let mut rows = Vec::new();
    for sessions in [50usize, 200, 800] {
        let logs = generate_logs(
            &engine,
            &LogConfig {
                sessions,
                topics: vec![Topic::Games, Topic::Wine, Topic::Movies],
                ..LogConfig::default()
            },
        );
        let suggest = SiteSuggest::from_logs(&logs);
        let suggestions = suggest.suggest(&["gamespot.com"], 3);
        // Relevant = the other authoritative game-review sites.
        let relevant = ["ign.com", "teamxbox.com"];
        let hits = suggestions
            .iter()
            .filter(|s| relevant.contains(&s.domain.as_str()))
            .count();
        rows.push(vec![
            sessions.to_string(),
            logs.len().to_string(),
            suggest.known_sites().to_string(),
            suggestions
                .iter()
                .map(|s| s.domain.clone())
                .collect::<Vec<_>>()
                .join(", "),
            format!("{:.2}", hits as f64 / relevant.len() as f64),
        ]);
    }
    print_table(
        "E7 — Site Suggest: recall of related review sites vs log size (seed: gamespot.com)",
        &[
            "sessions",
            "clicks",
            "sites seen",
            "top-3 suggestions",
            "recall@3",
        ],
        &rows,
    );
}

/// E9: click-feedback relevance signals (paper §IV conclusion):
/// community click logs feed boosts back into the general engine;
/// measure how far the most-clicked review pages rise.
fn e9_click_feedback() {
    let mut engine = SearchEngine::new(corpus(Scale::Medium));
    let logs = generate_logs(
        &engine,
        &LogConfig {
            sessions: 400,
            topics: vec![Topic::Games],
            ..LogConfig::default()
        },
    );
    // The most-clicked URLs per query, ground truth from the logs.
    let mut rows = Vec::new();
    let mut improved = 0usize;
    let mut total = 0usize;
    let queries: Vec<String> = {
        let mut qs: Vec<String> = logs.iter().map(|l| l.query.clone()).collect();
        qs.sort();
        qs.dedup();
        qs.truncate(8);
        qs
    };
    let top_clicked = |q: &str| -> Option<String> {
        let mut counts = std::collections::HashMap::new();
        for l in logs.iter().filter(|l| l.query == q) {
            *counts.entry(l.url.clone()).or_insert(0usize) += 1;
        }
        counts.into_iter().max_by_key(|(_, c)| *c).map(|(u, _)| u)
    };
    let rank_of = |engine: &SearchEngine, q: &str, url: &str| -> Option<usize> {
        engine
            .search(
                symphony_web::Vertical::Web,
                q,
                &symphony_web::SearchConfig::default(),
                10,
            )
            .iter()
            .position(|r| r.url == url)
    };
    let before: Vec<(String, Option<usize>, String)> = queries
        .iter()
        .filter_map(|q| {
            let url = top_clicked(q)?;
            Some((q.clone(), rank_of(&engine, q, &url), url))
        })
        .collect();
    engine.apply_click_feedback(&logs, 1.0);
    for (q, before_rank, url) in before {
        let after_rank = rank_of(&engine, &q, &url);
        if let (Some(b), Some(a)) = (before_rank, after_rank) {
            total += 1;
            if a <= b {
                improved += 1;
            }
            rows.push(vec![
                q.clone(),
                format!("#{}", b + 1),
                format!("#{}", a + 1),
            ]);
        }
    }
    rows.push(vec![
        "— not demoted —".into(),
        String::new(),
        format!("{improved}/{total}"),
    ]);
    print_table(
        "E9 — click-feedback loop: rank of each query's most-clicked URL",
        &["query", "before", "after"],
        &rows,
    );
}

/// E10: supplemental-site recommendation quality (paper §IV:
/// "recommending suitable supplemental content ... for a designer's
/// primary content").
fn e10_recommendation() {
    use symphony_core::recommend_sites;
    use symphony_store::IndexedTable;
    let engine = SearchEngine::new(corpus(Scale::Medium));
    let (table, _) = symphony_store::ingest::ingest(
        "inventory",
        symphony_bench::INVENTORY_CSV,
        symphony_store::DataFormat::Csv,
    )
    .expect("parses");
    let inventory = IndexedTable::new(table);
    let recs = recommend_sites(&engine, &inventory, "title", 8, 2);
    let mut rows: Vec<Vec<String>> = recs
        .iter()
        .take(6)
        .map(|r| {
            vec![
                r.domain.clone(),
                format!("{:.2}", r.score),
                r.supporting_entities.to_string(),
                if symphony_bench::REVIEW_SITES.contains(&r.domain.as_str()) {
                    "yes (paper §II-B)".into()
                } else {
                    "".into()
                },
            ]
        })
        .collect();
    let hand_picked_in_top3 = recs
        .iter()
        .take(3)
        .filter(|r| symphony_bench::REVIEW_SITES.contains(&r.domain.as_str()))
        .count();
    rows.push(vec![
        "— precision@3 vs Ann's picks —".into(),
        String::new(),
        String::new(),
        format!("{:.2}", hand_picked_in_top3 as f64 / 3.0),
    ]);
    print_table(
        "E10 — supplemental-site recommendation for the GamerQueen inventory",
        &[
            "recommended domain",
            "score",
            "entity support",
            "hand-picked?",
        ],
        &rows,
    );
}

/// E8: hosted QPS vs number of tenants.
/// E-resilience: virtual query-latency distribution under a planned
/// fault schedule, for three client configurations over the *same*
/// workload. The claim is a shape: circuit breakers turn an outage's
/// `timeout × attempts` tail into fast-fails, and hedging+backoff
/// shaves the burst/jitter tail further — so p99 drops sharply vs the
/// naive retry client while the degraded-query rate stays comparable.
fn e_resilience() {
    use symphony_services::{BreakerConfig, CallPolicy, FaultPlan};

    let faults = || {
        FaultPlan::new()
            .outage("pricing", 10_000, 25_000)
            .latency_spike("pricing", 40_000, 55_000, 150)
            .fault_burst("pricing", 70_000, 85_000, 0.5)
    };
    let base_policy = CallPolicy {
        timeout_ms: 250,
        retries: 2,
        ..CallPolicy::default()
    };
    let tuned_breaker = BreakerConfig {
        failure_threshold: 5,
        open_ms: 5_000,
        half_open_successes: 2,
    };
    let configs: Vec<(&str, CallPolicy, BreakerConfig)> = vec![
        ("naive retry", base_policy, BreakerConfig::disabled()),
        ("breaker", base_policy, tuned_breaker),
        (
            "breaker+backoff+hedge",
            CallPolicy {
                timeout_ms: 250,
                retries: 2,
                backoff_base_ms: 25,
                backoff_cap_ms: 500,
                hedge_after_ms: Some(60),
            },
            tuned_breaker,
        ),
    ];

    let queries = zipf_queries(400, 1.1, 17);
    let mut rows = Vec::new();
    for (label, policy, breakers) in configs {
        let (platform, id) = resilience_world(ResilienceOptions {
            policy,
            breakers,
            resilience: symphony_core::ResiliencePolicy {
                query_deadline_ms: 1_000,
                per_source_budget_ms: 800,
                max_total_retries: u32::MAX,
            },
            faults: faults(),
            ..ResilienceOptions::default()
        });
        let mut latencies = Vec::with_capacity(queries.len());
        let mut degraded = 0u64;
        for q in &queries {
            let resp = platform.query(id, q).expect("ok");
            latencies.push(resp.virtual_ms);
            if resp.trace.degraded {
                degraded += 1;
            }
            platform.advance_clock(180); // think time between requests
        }
        rows.push(vec![
            label.to_string(),
            percentile(&latencies, 0.50).to_string(),
            percentile(&latencies, 0.95).to_string(),
            percentile(&latencies, 0.99).to_string(),
            latencies.iter().max().copied().unwrap_or(0).to_string(),
            format!("{:.1}%", 100.0 * degraded as f64 / queries.len() as f64),
        ]);
    }
    print_table(
        "E-resilience — virtual latency under outage+spike+burst (400 queries, virtual ms)",
        &["client", "p50", "p95", "p99", "max", "degraded"],
        &rows,
    );
}

/// E-ingest: live incremental ingest under the segment-lifecycle
/// policy. Half the corpus is bulk-loaded and compacted; the other
/// half streams in one document per virtual millisecond under a
/// near-real-time policy, mixed with re-crawls (updates) and removals
/// (deletes), with a maintenance tick every virtual ms driving seals
/// and tiered merges. Interleaved queries measure read latency under
/// merge pressure; per-document visibility timestamps measure
/// staleness against the policy's bound. A machine-readable snapshot
/// lands in `BENCH_ingest.json` (ROADMAP item 3: persistent perf
/// trajectory); the CI smoke step asserts the bounded-staleness and
/// flat-p99 claims.
fn e_ingest() {
    use symphony_text::{DocId, Query, Searcher, SegmentPolicy};

    let c = corpus(Scale::Medium);
    let pages: Vec<(String, String)> = c
        .pages
        .iter()
        .map(|p| (p.title.clone(), p.body.clone()))
        .collect();
    let seed_n = pages.len() / 4;

    let policy = SegmentPolicy {
        memtable_max_docs: 32,
        staleness_window_ms: 50,
        merge_fanin: 4,
        near_real_time: true,
    };
    let mut index = Index::new(IndexConfig::default());
    let title = index.register_field("title", 2.0);
    let body = index.register_field("body", 1.0);
    let batch: Vec<Doc> = pages[..seed_n]
        .iter()
        .map(|(t, b)| Doc::new().field(title, t.clone()).field(body, b.clone()))
        .collect();
    index.build_parallel(batch, 4);
    index.optimize();
    index.set_policy(policy);

    let queries: Vec<Query> = zipf_queries(64, 1.0, 29)
        .iter()
        .map(|q| Query::parse(q))
        .collect();

    // Stream the second half: each virtual ms one arrival — mostly
    // fresh documents, every 5th a re-crawl of an earlier doc, every
    // 7th a removal — then a maintenance tick. Every 3rd ms runs one
    // query and records its wall latency.
    let mut now_ms = 0u64;
    let mut ingest_wall = std::time::Duration::ZERO;
    let mut query_us: Vec<u32> = Vec::new();
    let mut pending: Vec<u64> = Vec::new(); // add times awaiting a seal
    let mut max_staleness = 0u64;
    let (mut seals, mut merges, mut purged) = (0usize, 0usize, 0usize);
    let (mut added, mut updated, mut deleted) = (0usize, 0usize, 0usize);
    for (i, (t, b)) in pages[seed_n..].iter().enumerate() {
        now_ms += 1;
        let start = Instant::now();
        if i % 7 == 6 {
            // Removal of a bulk-loaded document.
            if index.delete(DocId((i % seed_n) as u32)) {
                deleted += 1;
            }
        } else if i % 5 == 4 {
            // Re-crawl: tombstone the most recent arrival and re-add
            // it under a fresh doc id.
            let old = DocId((index.total_docs() - 1) as u32);
            if index
                .update(
                    old,
                    Doc::new().field(title, t.clone()).field(body, b.clone()),
                )
                .is_some()
            {
                updated += 1;
                pending.push(now_ms);
            }
        } else {
            index.add(Doc::new().field(title, t.clone()).field(body, b.clone()));
            added += 1;
            pending.push(now_ms);
        }
        let report = index.maintain(now_ms);
        ingest_wall += start.elapsed();
        seals += usize::from(report.sealed);
        merges += report.merged_segments;
        purged += report.purged_docs;
        if report.sealed {
            // Everything buffered since the previous seal just became
            // visible; its staleness is the wait for this seal.
            for &at in &pending {
                max_staleness = max_staleness.max(now_ms - at);
            }
            pending.clear();
        }
        if i % 3 == 0 {
            let q = &queries[(i / 3) % queries.len()];
            let start = Instant::now();
            std::hint::black_box(Searcher::new(&index).search(q, 10));
            query_us.push(start.elapsed().as_micros() as u32);
        }
    }
    let streamed = pages.len() - seed_n;
    let ingest_docs_per_sec = streamed as f64 / ingest_wall.as_secs_f64().max(1e-9);
    let p50 = percentile(&query_us, 0.50);
    let p99 = percentile(&query_us, 0.99);

    // Post-stream baseline: fully compact, then re-run the same
    // queries. "Flat p99" = the under-merge-pressure tail stays within
    // a small factor of this single-segment floor.
    index.optimize();
    let mut opt_us: Vec<u32> = Vec::new();
    for _ in 0..3 {
        for q in &queries {
            let start = Instant::now();
            std::hint::black_box(Searcher::new(&index).search(q, 10));
            opt_us.push(start.elapsed().as_micros() as u32);
        }
    }
    let opt_p99 = percentile(&opt_us, 0.99);
    let stats = index.stats();

    print_table(
        &format!("E-ingest — live ingest vs queries, {streamed} arrivals (NRT, window 50ms)"),
        &[
            "adds",
            "recrawls",
            "deletes",
            "docs/s (wall)",
            "max staleness ms",
            "seals",
            "merges",
            "purged",
            "q p50 µs",
            "q p99 µs",
            "p99 µs (compacted)",
        ],
        &[vec![
            added.to_string(),
            updated.to_string(),
            deleted.to_string(),
            format!("{ingest_docs_per_sec:.0}"),
            max_staleness.to_string(),
            seals.to_string(),
            merges.to_string(),
            purged.to_string(),
            p50.to_string(),
            p99.to_string(),
            opt_p99.to_string(),
        ]],
    );

    // Machine-readable snapshot (hand-rolled JSON; no serde in-tree).
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e-ingest\",\n",
            "  \"seed_docs\": {},\n",
            "  \"streamed_docs\": {},\n",
            "  \"adds\": {},\n",
            "  \"recrawls\": {},\n",
            "  \"deletes\": {},\n",
            "  \"ingest_docs_per_sec\": {:.0},\n",
            "  \"staleness_window_ms\": {},\n",
            "  \"max_staleness_ms\": {},\n",
            "  \"seals\": {},\n",
            "  \"merges\": {},\n",
            "  \"purged_docs\": {},\n",
            "  \"final_sealed_segments\": {},\n",
            "  \"query_p50_us\": {},\n",
            "  \"query_p99_us\": {},\n",
            "  \"query_p99_us_compacted\": {}\n",
            "}}\n"
        ),
        seed_n,
        streamed,
        added,
        updated,
        deleted,
        ingest_docs_per_sec,
        policy.staleness_window_ms,
        max_staleness,
        seals,
        merges,
        purged,
        stats.sealed_segments,
        p50,
        p99,
        opt_p99,
    );
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    println!("wrote BENCH_ingest.json");

    // The acceptance claims, enforced wherever the experiment runs
    // (the CI smoke step relies on these panicking on regression).
    assert!(
        max_staleness <= policy.staleness_window_ms + 1,
        "staleness bound violated: {max_staleness}ms > window {}ms",
        policy.staleness_window_ms
    );
    assert!(
        merges > 0 && seals > 0,
        "stream too small to exercise merge pressure"
    );
}

/// E-postings: the bit-packed posting format and pruned execution.
///
/// Measures (a) top-k throughput at k=10 for multi-term and phrase
/// queries, pruned vs exhaustive — phrases used to pin the exhaustive
/// path, so their pruned column is new — and (b) index bytes, packed
/// blocks vs a reference varint re-encode of every compacted posting
/// list. Every query's pruned result is asserted bit-identical to the
/// exhaustive one before timings count, and the snapshot lands in
/// `BENCH_postings.json` for CI.
fn e_postings() {
    use symphony_text::postings::PostingList;
    use symphony_text::{Query, ScoreMode, Searcher};

    fn varint_push(out: &mut Vec<u8>, mut v: u32) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                break;
            }
            out.push(byte | 0x80);
        }
    }
    /// Byte size of the pre-packed layout: delta-varint doc, varint tf,
    /// delta-varint positions, one posting at a time.
    fn varint_baseline_len(list: &PostingList) -> usize {
        let mut out = Vec::new();
        let mut prev_doc = 0u32;
        for p in list.postings() {
            varint_push(&mut out, p.doc.0 - prev_doc);
            prev_doc = p.doc.0;
            varint_push(&mut out, p.positions.len() as u32);
            let mut prev_pos = 0u32;
            for &pos in &p.positions {
                varint_push(&mut out, pos - prev_pos);
                prev_pos = pos;
            }
        }
        out.len()
    }

    // A posting-format experiment needs posting lists long enough for
    // block skipping to matter: ~4x the Large preset, so common terms
    // span dozens of 128-doc blocks.
    let c = symphony_web::Corpus::generate(
        &symphony_web::CorpusConfig {
            sites_per_topic: 40,
            pages_per_site: 25,
            ..symphony_web::CorpusConfig::default()
        }
        .with_entities(Topic::Games, symphony_baselines::ENTITIES),
    );
    let mut index = Index::new(IndexConfig::default());
    let title = index.register_field("title", 2.0);
    let body = index.register_field("body", 1.0);
    for p in &c.pages {
        index.add(Doc::new().field(title, &*p.title).field(body, &*p.body));
    }
    index.optimize();

    let multi: Vec<Query> = zipf_queries(64, 1.0, 23)
        .iter()
        .filter(|q| q.split_whitespace().count() >= 2)
        .map(|q| Query::parse(q))
        .collect();
    let phrases: Vec<Query> = [
        "\"game review\"",
        "\"best game\" player",
        "+\"game review\" +player",
        "\"guide best\" -arcade",
    ]
    .iter()
    .map(|q| Query::parse(q))
    .collect();
    assert!(multi.len() >= 8, "need multi-term queries to measure");

    // Rank safety first: timings only count if both executors agree
    // bit-for-bit on every query.
    for q in multi.iter().chain(&phrases) {
        let pruned = Searcher::new(&index).search(q, 10);
        let exhaustive = Searcher::new(&index)
            .with_mode(ScoreMode::Exhaustive)
            .search(q, 10);
        let key = |hits: &[symphony_text::SearchHit]| {
            hits.iter()
                .map(|h| (h.doc, h.score.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&pruned), key(&exhaustive), "executors disagree on {q}");
    }

    // Throughput: both modes are timed back-to-back inside each round,
    // so ambient machine load hits them equally; the reported speedup
    // is the median of the per-round ratios (robust against one-sided
    // scheduler noise), and the per-mode q/s come from each mode's
    // fastest round.
    let measure = |queries: &[Query]| -> (f64, f64, f64) {
        let pruned = Searcher::new(&index).with_mode(ScoreMode::TopKPruned);
        let exhaustive = Searcher::new(&index).with_mode(ScoreMode::Exhaustive);
        for q in queries {
            std::hint::black_box(pruned.search(q, 10));
            std::hint::black_box(exhaustive.search(q, 10));
        }
        let mut ratios = Vec::new();
        let (mut best_p, mut best_e) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..12 {
            let start = Instant::now();
            for q in queries {
                std::hint::black_box(pruned.search(q, 10));
            }
            let tp = start.elapsed().as_secs_f64().max(1e-9);
            let start = Instant::now();
            for q in queries {
                std::hint::black_box(exhaustive.search(q, 10));
            }
            let te = start.elapsed().as_secs_f64().max(1e-9);
            ratios.push(te / tp);
            best_p = best_p.min(tp);
            best_e = best_e.min(te);
        }
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let speedup = (ratios[5] + ratios[6]) / 2.0;
        let n = queries.len() as f64;
        (n / best_p, n / best_e, speedup)
    };
    let (multi_pruned_qps, multi_exhaustive_qps, multi_speedup) = measure(&multi);
    let (phrase_pruned_qps, phrase_exhaustive_qps, phrase_speedup) = measure(&phrases);

    // Space: packed blocks (incl. block directory) vs the varint
    // re-encode of the same compacted lists.
    let mut packed_bytes = 0usize;
    let mut varint_bytes = 0usize;
    for (term, _) in index.lexicon().iter() {
        for field in [title, body] {
            if let Some(cp) = index.compacted_postings(term, field) {
                packed_bytes += cp.heap_bytes();
                varint_bytes += varint_baseline_len(&cp.decode());
            }
        }
    }
    let bytes_ratio = packed_bytes as f64 / varint_bytes as f64;
    let estimate = index.bytes_estimate();

    print_table(
        &format!(
            "E-postings — packed blocks + pruned execution, {} docs, k=10",
            c.pages.len()
        ),
        &[
            "query shape",
            "pruned q/s",
            "exhaustive q/s",
            "speedup",
            "packed B",
            "varint B",
            "ratio",
        ],
        &[
            vec![
                "multi-term".into(),
                format!("{multi_pruned_qps:.0}"),
                format!("{multi_exhaustive_qps:.0}"),
                format!("{multi_speedup:.2}x"),
                packed_bytes.to_string(),
                varint_bytes.to_string(),
                format!("{bytes_ratio:.3}"),
            ],
            vec![
                "phrase".into(),
                format!("{phrase_pruned_qps:.0}"),
                format!("{phrase_exhaustive_qps:.0}"),
                format!("{phrase_speedup:.2}x"),
                String::new(),
                String::new(),
                String::new(),
            ],
        ],
    );

    // Machine-readable snapshot (hand-rolled JSON; no serde in-tree).
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e-postings\",\n",
            "  \"docs\": {},\n",
            "  \"k\": 10,\n",
            "  \"multi_term_pruned_qps\": {:.0},\n",
            "  \"multi_term_exhaustive_qps\": {:.0},\n",
            "  \"multi_term_speedup\": {:.2},\n",
            "  \"phrase_pruned_qps\": {:.0},\n",
            "  \"phrase_exhaustive_qps\": {:.0},\n",
            "  \"phrase_speedup\": {:.2},\n",
            "  \"packed_postings_bytes\": {},\n",
            "  \"varint_postings_bytes\": {},\n",
            "  \"packed_over_varint\": {:.3},\n",
            "  \"index_bytes_estimate\": {}\n",
            "}}\n"
        ),
        c.pages.len(),
        multi_pruned_qps,
        multi_exhaustive_qps,
        multi_speedup,
        phrase_pruned_qps,
        phrase_exhaustive_qps,
        phrase_speedup,
        packed_bytes,
        varint_bytes,
        bytes_ratio,
        estimate,
    );
    std::fs::write("BENCH_postings.json", &json).expect("write BENCH_postings.json");
    println!("wrote BENCH_postings.json");

    // The acceptance claims, enforced wherever the experiment runs
    // (the CI smoke step relies on these panicking on regression).
    assert!(
        multi_speedup >= 2.0,
        "multi-term k=10 speedup {multi_speedup:.2}x below the 2x floor"
    );
    assert!(
        phrase_speedup >= 1.5,
        "pruned phrases below the 1.5x floor ({phrase_speedup:.2}x)"
    );
    assert!(
        packed_bytes < varint_bytes,
        "packed postings ({packed_bytes} B) not smaller than varint ({varint_bytes} B)"
    );
}

fn e8_tenancy() {
    let mut rows = Vec::new();
    for tenants in [1usize, 8, 32] {
        // One platform hosting `tenants` copies of the quickstart app
        // over one shared engine.
        use std::sync::Arc;
        use symphony_core::app::AppBuilder;
        use symphony_core::hosting::Platform;
        use symphony_core::source::DataSourceDef;
        use symphony_designer::{Canvas, Element};
        let engine = Arc::new(SearchEngine::new(corpus(Scale::Small)));
        let mut platform = Platform::new(engine)
            .with_quotas(QuotaConfig {
                requests_per_minute: 1_000_000,
                cache_ttl_ms: 0, // measure execution, not cache
                ..QuotaConfig::default()
            })
            .with_source_cache(symphony_core::SourceCacheConfig::disabled());
        let mut apps = Vec::new();
        for t in 0..tenants {
            let name = format!("T{t}");
            let (tenant, key) = platform.create_tenant(&name);
            let (table, _) = symphony_store::ingest::ingest(
                "inv",
                symphony_bench::INVENTORY_CSV,
                symphony_store::DataFormat::Csv,
            )
            .expect("parses");
            let mut indexed = symphony_store::IndexedTable::new(table);
            indexed
                .enable_fulltext(&[("title", 2.0), ("description", 1.0)])
                .expect("columns");
            platform.upload_table(tenant, &key, indexed).expect("quota");
            let mut canvas = Canvas::new();
            let root = canvas.root_id();
            canvas
                .insert(
                    root,
                    Element::result_list("inv", Element::text("{title}"), 10),
                )
                .expect("root");
            let config = AppBuilder::new(&name, tenant)
                .layout(canvas)
                .source(
                    "inv",
                    DataSourceDef::Proprietary {
                        table: "inv".into(),
                    },
                )
                .build()
                .expect("valid");
            let id = platform.register_app(config).expect("registers");
            platform.publish(id).expect("publishes");
            apps.push(id);
        }
        let queries = zipf_queries(400, 1.0, 5);
        let start = Instant::now();
        for (i, q) in queries.iter().enumerate() {
            let app = apps[i % apps.len()];
            platform.query(app, q).expect("ok");
        }
        let elapsed = start.elapsed();
        rows.push(vec![
            tenants.to_string(),
            format!("{:.0}", queries.len() as f64 / elapsed.as_secs_f64()),
            format!("{:.0}", elapsed.as_secs_f64() * 1e6 / queries.len() as f64),
        ]);
    }
    print_table(
        "E8 — hosted execution: QPS vs tenant count (no cache, 400 queries)",
        &["tenants", "QPS (wall)", "mean µs/query"],
        &rows,
    );
}

/// One cell of the E-overload SLO grid.
struct OverloadCell {
    factor: f64,
    ac: bool,
    offered_qps: f64,
    goodput_qps: f64,
    shed_rate: f64,
    p50: u32,
    p99: u32,
    p999: u32,
    nonburst_p99: u32,
    tenant0_shed_rate: f64,
    fairness_tv: f64,
}

/// E-overload: per-tenant admission control under open-loop overload.
///
/// A six-tenant fleet (Zipf-popular, caches disabled so every query
/// pays its real service time) is provisioned with token-bucket rates
/// summing to ~85% of pilot-measured capacity, then driven by the
/// open-loop traffic generator at 0.5×–10× capacity with a tenant-0
/// flash crowd in every run. Each offered-load factor runs twice —
/// admission control on and off — over the *same* arrival schedule, so
/// the two columns differ only in policy. A separate million-session
/// cell (caches on, clicks on) exercises the harness at scale.
///
/// `OVERLOAD_SESSIONS` scales the whole experiment down for CI smokes.
fn e_overload() {
    use symphony_core::AdmissionPolicy;

    const TENANTS: usize = 6;
    const SKEW: f64 = 0.8;
    // Mean arrivals per generated session (1 + min of two U{0..3}).
    const QUERIES_PER_SESSION: f64 = 1.875;

    let scale_sessions: usize = std::env::var("OVERLOAD_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let grid_sessions = (scale_sessions / 80).clamp(2_000, 12_000);

    // Query pool: every text matches at least one inventory row, so
    // every executed query pays the supplemental pricing fan-out.
    let pool: Vec<String> = [
        "galactic raiders",
        "space shooter",
        "fast lasers",
        "farm story",
        "calm farming",
        "crops and animals",
        "space trader",
        "trade goods",
        "space stations",
        "laser golf",
        "silly shooter",
        "golf with lasers",
        "puzzle palace",
        "puzzle rooms",
        "mind bending",
        "space",
        "shooter",
        "lasers",
        "farming",
        "puzzle",
    ]
    .iter()
    .map(|q| q.to_string())
    .collect();

    // Pilot: measure mean service time on an unlimited, cache-less
    // fleet; capacity is its reciprocal. The pilot replays the
    // generator's own (tenant, query) mix back-to-back — query
    // popularity is Zipf-skewed, so a uniform sweep of the pool would
    // underestimate the mean and overprovision the buckets.
    let (pilot, pilot_ids) = overload_fleet_world(TENANTS, &[], false);
    let pilot_mix = generate(&TrafficConfig {
        tenants: TENANTS,
        sessions: 400,
        tenant_skew: SKEW,
        duration_ms: 600_000,
        diurnal_amplitude: 0.0,
        query_pool: pool.len(),
        click_base: 0.0,
        bursts: Vec::new(),
        seed: 0x1075,
    });
    let pilot_start = pilot.clock_ms();
    for a in &pilot_mix {
        pilot
            .query(pilot_ids[a.tenant as usize], &pool[a.query as usize])
            .expect("pilot query");
    }
    let mean_service_ms = (pilot.clock_ms() - pilot_start) as f64 / pilot_mix.len() as f64;
    let capacity_qps = 1000.0 / mean_service_ms;

    // Provision ~85% of capacity across tenants by Zipf share, using
    // largest-remainder rounding so the integer rates sum exactly to
    // the target. Weight follows rate, so fair scheduling and
    // admission agree on each tenant's entitlement.
    let target_total = (0.85 * capacity_qps).round().max(TENANTS as f64) as u64;
    let shares: Vec<f64> = {
        let raw: Vec<f64> = (1..=TENANTS).map(|r| 1.0 / (r as f64).powf(SKEW)).collect();
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|s| s / sum).collect()
    };
    let mut rates: Vec<u64> = shares
        .iter()
        .map(|s| (target_total as f64 * s).floor() as u64)
        .collect();
    let mut remainders: Vec<(f64, usize)> = shares
        .iter()
        .enumerate()
        .map(|(i, s)| (target_total as f64 * s - rates[i] as f64, i))
        .collect();
    remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN"));
    let mut left = target_total.saturating_sub(rates.iter().sum::<u64>());
    for (_, i) in remainders {
        if left == 0 {
            break;
        }
        rates[i] += 1;
        left -= 1;
    }
    for r in &mut rates {
        *r = (*r).max(1);
    }
    let provisioned_qps: u64 = rates.iter().sum();
    let policies: Vec<AdmissionPolicy> = rates
        .iter()
        .map(|&r| AdmissionPolicy {
            rate_per_sec: r as u32,
            // Flat burst of 2 for every tenant: enough headroom to
            // absorb a back-to-back query pair, small enough that the
            // admitted stream stays token-paced. Rate-sized bursts let
            // big tenants bank several tokens and fire them adjacently,
            // which shows up directly in the platform-wide p99.
            burst: 2,
            max_concurrency: 16,
            weight: r as u32,
        })
        .collect();

    println!("\n## E-overload: admission control under open-loop overload");
    println!(
        "capacity {capacity_qps:.1} qps (mean service {mean_service_ms:.1} ms), \
         provisioned {provisioned_qps} qps across {TENANTS} tenants (rates {rates:?})"
    );

    let run_cell = |factor: f64, ac: bool, flash: bool| -> OverloadCell {
        let (platform, ids) =
            overload_fleet_world(TENANTS, if ac { &policies } else { &[] }, false);
        let mut config = TrafficConfig {
            tenants: TENANTS,
            sessions: grid_sessions,
            tenant_skew: SKEW,
            duration_ms: ((grid_sessions as f64 * QUERIES_PER_SESSION) / (factor * capacity_qps)
                * 1000.0) as u64,
            diurnal_amplitude: 0.35,
            query_pool: pool.len(),
            click_base: 0.0,
            bursts: Vec::new(),
            seed: 0xACE0 + (factor * 10.0) as u64,
        };
        // Second pass pins the offered rate: regenerate with the
        // duration implied by the actual arrival count.
        let probe = generate(&config).len();
        config.duration_ms = (probe as f64 / (factor * capacity_qps) * 1000.0) as u64;
        // Tenant-0 flash crowd across 10% of the run, in every grid
        // cell (the unloaded baseline runs without it).
        if flash {
            config.bursts = vec![BurstWindow {
                tenant: 0,
                start_ms: config.duration_ms * 2 / 5,
                end_ms: config.duration_ms / 2,
                extra_sessions: grid_sessions / 16,
            }];
        }
        let arrivals = generate(&config);
        // Measure steady state: skip the first fifth (cold full buckets
        // admit one free burst) and stop at the end of the offered
        // window (think-time stragglers trail off past it).
        let window = (config.duration_ms / 5, config.duration_ms);
        let report = replay(&platform, &ids, &pool, &arrivals, false, Some(window));
        let offered = report.tenants.iter().map(|t| t.offered).sum::<u64>();
        let offered_qps = offered as f64 * 1000.0 / (window.1 - window.0).max(1) as f64;
        if std::env::var("OVERLOAD_DEBUG").is_ok() {
            let w_s = (window.1 - window.0) as f64 / 1000.0;
            for (i, t) in report.tenants.iter().enumerate() {
                eprintln!(
                    "debug f={factor} ac={ac} tenant {i}: offered {:.2}/s served {:.2}/s shed {:.2}/s",
                    t.offered as f64 / w_s,
                    t.served as f64 / w_s,
                    t.shed as f64 / w_s,
                );
            }
        }
        let latencies = report.all_latencies();
        let nonburst: Vec<u32> = report.tenants[1..]
            .iter()
            .flat_map(|t| t.latencies.iter().copied())
            .collect();
        let offered0 = report.tenants[0].offered.max(1);
        let rate_total: f64 = rates.iter().sum::<u64>() as f64;
        let fairness_tv = 0.5
            * report
                .tenants
                .iter()
                .zip(&rates)
                .map(|(t, r)| {
                    (t.served as f64 / report.served.max(1) as f64 - *r as f64 / rate_total).abs()
                })
                .sum::<f64>();
        OverloadCell {
            factor,
            ac,
            offered_qps,
            goodput_qps: report.goodput_qps(),
            shed_rate: report.shed as f64 / (report.served + report.shed).max(1) as f64,
            p50: percentile(&latencies, 0.50),
            p99: percentile(&latencies, 0.99),
            p999: percentile(&latencies, 0.999),
            nonburst_p99: percentile(&nonburst, 0.99),
            tenant0_shed_rate: report.tenants[0].shed as f64 / offered0 as f64,
            fairness_tv,
        }
    };

    // Unloaded SLO reference: half load, no flash crowd, no admission
    // interference — the latency a correctly-provisioned tenant sees.
    let unloaded = run_cell(0.5, false, false);
    println!(
        "unloaded baseline (0.5x offered, no flash crowd, AC off): \
         p50 {} ms, p99 {} ms, p999 {} ms",
        unloaded.p50, unloaded.p99, unloaded.p999,
    );

    let mut cells = Vec::new();
    for &factor in &[0.5, 1.0, 2.0, 4.0, 10.0] {
        for ac in [true, false] {
            cells.push(run_cell(factor, ac, true));
        }
    }
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                format!("{:.1}x", c.factor),
                if c.ac { "on" } else { "off" }.to_string(),
                format!("{:.1}", c.offered_qps),
                format!("{:.1}", c.goodput_qps),
                format!("{:.1}%", c.shed_rate * 100.0),
                c.p50.to_string(),
                c.p99.to_string(),
                c.p999.to_string(),
                c.nonburst_p99.to_string(),
                format!("{:.1}%", c.tenant0_shed_rate * 100.0),
                format!("{:.3}", c.fairness_tv),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E-overload — SLO grid, {grid_sessions} sessions/cell, tenant-0 burst in every run"
        ),
        &[
            "load", "AC", "offered", "goodput", "shed", "p50", "p99", "p999", "nb-p99", "t0-shed",
            "fair-tv",
        ],
        &rows,
    );

    // Million-session scale cell: caches on, clicks on, generous
    // admission — the harness itself at full width.
    let (scale_platform, scale_ids) = overload_fleet_world(TENANTS, &[], true);
    let scale_config = TrafficConfig {
        tenants: TENANTS,
        sessions: scale_sessions,
        tenant_skew: SKEW,
        duration_ms: ((scale_sessions as f64 * QUERIES_PER_SESSION) / 200.0 * 1000.0) as u64,
        diurnal_amplitude: 0.35,
        query_pool: pool.len(),
        click_base: 0.3,
        bursts: Vec::new(),
        seed: 0x5CA1E,
    };
    let scale_arrivals = generate(&scale_config);
    let wall = Instant::now();
    let scale_report = replay(
        &scale_platform,
        &scale_ids,
        &pool,
        &scale_arrivals,
        true,
        None,
    );
    let wall_s = wall.elapsed().as_secs_f64().max(1e-9);
    let scale_latencies = scale_report.all_latencies();
    let scale_p99 = percentile(&scale_latencies, 0.99);
    let replay_qps_wall = scale_arrivals.len() as f64 / wall_s;
    println!(
        "\nscale cell: {} sessions -> {} arrivals, {} served, {} clicks, \
         p99 {scale_p99} ms virtual, replayed at {replay_qps_wall:.0} q/s wall ({wall_s:.1} s)",
        scale_sessions,
        scale_arrivals.len(),
        scale_report.served,
        scale_report.clicks,
    );

    let sessions_modeled = grid_sessions * (cells.len() + 1) + scale_sessions;
    let on4 = cells
        .iter()
        .find(|c| c.factor == 4.0 && c.ac)
        .expect("4x AC-on cell");
    let off4 = cells
        .iter()
        .find(|c| c.factor == 4.0 && !c.ac)
        .expect("4x AC-off cell");

    let mut cells_json = String::new();
    for (i, c) in cells.iter().enumerate() {
        cells_json.push_str(&format!(
            "    {{ \"factor\": {}, \"ac\": {}, \"offered_qps\": {:.1}, \
             \"goodput_qps\": {:.1}, \"shed_rate\": {:.3}, \"p50_ms\": {}, \
             \"p99_ms\": {}, \"p999_ms\": {}, \"nonburst_p99_ms\": {}, \
             \"tenant0_shed_rate\": {:.3}, \"fairness_tv\": {:.3} }}{}\n",
            c.factor,
            c.ac,
            c.offered_qps,
            c.goodput_qps,
            c.shed_rate,
            c.p50,
            c.p99,
            c.p999,
            c.nonburst_p99,
            c.tenant0_shed_rate,
            c.fairness_tv,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e-overload\",\n",
            "  \"capacity_qps\": {:.1},\n",
            "  \"mean_service_ms\": {:.1},\n",
            "  \"provisioned_qps\": {},\n",
            "  \"tenant_rates_qps\": {:?},\n",
            "  \"sessions_modeled\": {},\n",
            "  \"grid_sessions_per_cell\": {},\n",
            "  \"scale_sessions\": {},\n",
            "  \"scale_arrivals\": {},\n",
            "  \"scale_served\": {},\n",
            "  \"scale_clicks\": {},\n",
            "  \"scale_p99_ms\": {},\n",
            "  \"scale_replay_qps_wall\": {:.0},\n",
            "  \"unloaded_p99_ms\": {},\n",
            "  \"cells\": [\n{}  ]\n",
            "}}\n"
        ),
        capacity_qps,
        mean_service_ms,
        provisioned_qps,
        rates,
        sessions_modeled,
        grid_sessions,
        scale_sessions,
        scale_arrivals.len(),
        scale_report.served,
        scale_report.clicks,
        scale_p99,
        replay_qps_wall,
        unloaded.p99,
        cells_json,
    );
    std::fs::write("BENCH_overload.json", &json).expect("write BENCH_overload.json");
    println!("wrote BENCH_overload.json");

    // The acceptance claims, enforced wherever the experiment runs
    // (the CI smoke step relies on these panicking on regression).
    assert!(
        on4.nonburst_p99 <= 2 * unloaded.p99.max(1),
        "4x overload with AC on must hold non-burst p99 within 2x of unloaded: \
         {} ms vs unloaded {} ms",
        on4.nonburst_p99,
        unloaded.p99,
    );
    assert!(
        on4.goodput_qps >= 0.8 * capacity_qps,
        "4x overload with AC on must keep goodput >= 80% of capacity: \
         {:.1} qps vs capacity {:.1} qps",
        on4.goodput_qps,
        capacity_qps,
    );
    assert!(
        off4.p99 as f64 >= 5.0 * on4.p99.max(1) as f64,
        "4x overload with AC off must collapse relative to AC on: \
         p99 {} ms (off) vs {} ms (on)",
        off4.p99,
        on4.p99,
    );
    assert!(
        on4.shed_rate > 0.5 && on4.tenant0_shed_rate > on4.shed_rate,
        "4x overload must shed most traffic, the bursting tenant hardest: \
         overall {:.2}, tenant 0 {:.2}",
        on4.shed_rate,
        on4.tenant0_shed_rate,
    );
    assert!(
        scale_report.shed == 0 && scale_report.clicks > 0,
        "scale cell must serve everything under generous admission and deliver clicks"
    );
}

struct ShardCell {
    shards: usize,
    goodput_qps: f64,
    speedup: f64,
    p50: u32,
    p99: u32,
}

/// E-shard: document-partitioned serving behind the tenant router.
///
/// A 16-tenant web-search fleet runs at 1/2/4/8 shards over the same
/// corpus and the same arrival schedules. Three measurements:
///
/// * **Saturated throughput** — every arrival lands at t=0, so each
///   home shard drains its tenants back-to-back and the aggregate
///   goodput is `served / max(shard clock)`. Sharding wins twice:
///   scatter legs shrink with the document slice, and tenants homed on
///   different shards drain in parallel.
/// * **Fixed-rate latency** — the open-loop generator offers ~70% of
///   the measured single-shard capacity to every fleet size; queue
///   wait collapses as shards are added.
/// * **Partial degrade** — the 4-shard fleet re-runs the saturated
///   schedule with one shard's primary *and* replica dead. Queries
///   degrade to partial results (never errors), and once the breakers
///   open the dead legs cost nothing.
///
/// A rank-identity check asserts the 4-shard scatter-gather returns
/// bit-identical results to a single-index search for the whole query
/// pool. `SHARD_SESSIONS` scales the experiment down for CI smokes.
fn e_shard() {
    const TENANTS: usize = 16;

    let shard_queries: usize = std::env::var("SHARD_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);

    // Query pool: the scenario's evaluation queries plus topical
    // filler — all hit the synthetic web index.
    let pool: Vec<String> = EVAL_QUERIES
        .iter()
        .map(|(q, _)| q.to_string())
        .chain(
            Topic::Games
                .words()
                .iter()
                .take(12)
                .map(|w| format!("{w} game")),
        )
        .collect();

    // Saturated schedule: every query arrives at t=0, tenants round-
    // robin, query popularity Zipf-skewed. Identical across fleet
    // sizes, so the cells differ only in shard count.
    let saturated: Vec<Arrival> = {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let zipf = symphony_web::zipf::Zipf::new(pool.len(), 1.0);
        let mut rng = StdRng::seed_from_u64(0x5AAD);
        (0..shard_queries)
            .map(|i| Arrival {
                at_ms: 0,
                tenant: (i % TENANTS) as u16,
                query: zipf.sample(&mut rng) as u16,
                clicks: 0,
            })
            .collect()
    };

    println!("\n## E-shard: document-partitioned serving ({shard_queries} queries/cell)");

    // Pass 1: saturated throughput per fleet size.
    let fleet_sizes = [1usize, 2, 4, 8];
    let mut goodputs = Vec::new();
    for &n in &fleet_sizes {
        let (router, ids) = shard_fleet_world(n, TENANTS, None);
        let report = replay(&router, &ids, &pool, &saturated, false, None);
        assert_eq!(report.shed, 0, "no admission limits in the shard fleet");
        assert_eq!(report.served as usize, shard_queries, "every query served");
        goodputs.push(report.goodput_qps());
    }
    let capacity_1 = goodputs[0];

    // Pass 2: fixed-rate latency at ~70% of single-shard capacity.
    let rate_qps = 0.7 * capacity_1;
    let sessions = (shard_queries / 4).max(200);
    let mut config = TrafficConfig {
        tenants: TENANTS,
        sessions,
        tenant_skew: 0.0,
        duration_ms: ((sessions as f64 * 1.875) / rate_qps * 1000.0) as u64,
        diurnal_amplitude: 0.0,
        query_pool: pool.len(),
        click_base: 0.0,
        bursts: Vec::new(),
        seed: 0x5AD2,
    };
    let probe = generate(&config).len();
    config.duration_ms = (probe as f64 / rate_qps * 1000.0) as u64;
    let arrivals = generate(&config);
    let mut cells = Vec::new();
    for (i, &n) in fleet_sizes.iter().enumerate() {
        let (router, ids) = shard_fleet_world(n, TENANTS, None);
        let report = replay(&router, &ids, &pool, &arrivals, false, None);
        let latencies = report.all_latencies();
        cells.push(ShardCell {
            shards: n,
            goodput_qps: goodputs[i],
            speedup: goodputs[i] / capacity_1.max(1e-9),
            p50: percentile(&latencies, 0.50),
            p99: percentile(&latencies, 0.99),
        });
    }
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.shards.to_string(),
                format!("{:.1}", c.goodput_qps),
                format!("{:.2}x", c.speedup),
                c.p50.to_string(),
                c.p99.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("E-shard — saturated goodput and fixed-rate ({rate_qps:.1} qps offered) latency"),
        &["shards", "goodput", "speedup", "p50", "p99"],
        &rows,
    );

    // Pass 3: partial degrade — shard 1 of 4 loses primary AND replica
    // for the whole run; the fleet serves partial results.
    let plan = FaultPlan::new()
        .outage(&shard_endpoint(1), 0, u64::MAX / 2)
        .outage(&replica_endpoint(1), 0, u64::MAX / 2);
    let (router, ids) = shard_fleet_world(4, TENANTS, Some(plan));
    let degrade = replay(&router, &ids, &pool, &saturated, false, None);
    let degraded_rate = degrade.degraded as f64 / degrade.served.max(1) as f64;
    let degrade_goodput = degrade.goodput_qps();
    println!(
        "partial degrade (4 shards, shard 1 primary+replica dead): \
         {:.1}% of queries degraded, goodput {:.1} qps ({:.0}% of healthy)",
        degraded_rate * 100.0,
        degrade_goodput,
        degrade_goodput / cells[2].goodput_qps.max(1e-9) * 100.0,
    );

    // Rank identity: 4-shard scatter-gather is bit-identical to a
    // single-index search over the whole pool.
    let single = SearchEngine::new(corpus(Scale::Small));
    let (rank_router, _) = shard_fleet_world(4, 1, None);
    let bits = |rs: &[symphony_web::WebResult]| -> Vec<(String, u32)> {
        rs.iter()
            .map(|r| (r.url.clone(), r.score.to_bits()))
            .collect()
    };
    let mut rank_checked = 0usize;
    for q in &pool {
        let sconfig = SearchConfig::default();
        let out = rank_router
            .cluster()
            .scatter(Vertical::Web, q, &sconfig, 10, 0);
        assert!(out.error.is_none(), "healthy fleet answers in full");
        assert_eq!(
            bits(&out.results),
            bits(&single.search(Vertical::Web, q, &sconfig, 10)),
            "scatter-gather must be bit-identical to single-index search for {q:?}"
        );
        rank_checked += 1;
    }
    println!(
        "rank identity: {rank_checked}/{} pool queries bit-identical",
        pool.len()
    );

    let mut cells_json = String::new();
    for (i, c) in cells.iter().enumerate() {
        cells_json.push_str(&format!(
            "    {{ \"shards\": {}, \"goodput_qps\": {:.1}, \"speedup\": {:.2}, \
             \"p50_ms\": {}, \"p99_ms\": {} }}{}\n",
            c.shards,
            c.goodput_qps,
            c.speedup,
            c.p50,
            c.p99,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e-shard\",\n",
            "  \"queries_per_cell\": {},\n",
            "  \"tenants\": {},\n",
            "  \"offered_qps_fixed_rate\": {:.1},\n",
            "  \"degraded_rate\": {:.3},\n",
            "  \"degrade_goodput_qps\": {:.1},\n",
            "  \"rank_identical_queries\": {},\n",
            "  \"cells\": [\n{}  ]\n",
            "}}\n"
        ),
        shard_queries, TENANTS, rate_qps, degraded_rate, degrade_goodput, rank_checked, cells_json,
    );
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("wrote BENCH_shard.json");

    // The acceptance claims, enforced wherever the experiment runs
    // (the CI smoke step relies on these panicking on regression).
    assert!(
        cells[2].speedup >= 2.0,
        "4 shards must at least double aggregate goodput: {:.2}x",
        cells[2].speedup,
    );
    assert!(
        cells[1].goodput_qps > cells[0].goodput_qps && cells[3].goodput_qps > cells[1].goodput_qps,
        "goodput must grow with the fleet: {goodputs:?}",
    );
    assert!(
        cells[2].p99 <= cells[0].p99,
        "4 shards must not worsen fixed-rate p99: {} ms vs {} ms",
        cells[2].p99,
        cells[0].p99,
    );
    assert!(
        degraded_rate > 0.95,
        "a dead shard must degrade (not drop) nearly every query: {:.3}",
        degraded_rate,
    );
    assert!(
        degrade_goodput >= 0.5 * cells[2].goodput_qps,
        "the degraded fleet must keep most of its throughput once the \
         breakers open: {degrade_goodput:.1} vs healthy {:.1}",
        cells[2].goodput_qps,
    );
}

/// E-hybrid: selectivity-planned structured + full-text execution.
///
/// A synthetic review table (`HYBRID_ROWS` rows, default 20k) carries
/// an ordered index on `price = i % 1000`, so `price < c` has exact
/// selectivity `c / 1000`. Every cell of a selectivity grid runs a
/// fixed query pool under all three strategies — filter-first pushdown,
/// search-first over-fetch + post-filter, and exhaustive scan — forced
/// via `hybrid_query_planned`. The lists must be bit-identical per
/// query (plan choice is purely a performance decision), and at <= 1%
/// selectivity the index-resolved pushdown must beat
/// search-then-post-filter by at least 3x. The planner's EXPLAIN for
/// each cell lands in BENCH_hybrid.json.
fn e_hybrid() {
    let rows: usize = std::env::var("HYBRID_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let k = 10usize;

    // Three note bodies on an `i % 3` cycle; 1000 % 3 != 0, so every
    // price stratum mixes vocabularies (no filter/text correlation).
    const NOTES: [&str; 3] = [
        "smoky oak finish with vanilla",
        "bright citrus and melon notes",
        "oak barrel aged deep tannins",
    ];
    let schema = Schema::of(&[
        ("product", FieldType::Text),
        ("body", FieldType::Text),
        ("price", FieldType::Int),
    ]);
    let mut table = IndexedTable::new(Table::new("reviews", schema));
    for i in 0..rows {
        table.insert(Record::new(vec![
            Value::Text(format!("wine-{}", i % 97)),
            Value::Text(NOTES[i % 3].into()),
            Value::Int((i % 1000) as i64),
        ]));
    }
    table
        .create_index("price", IndexKind::Ordered)
        .expect("price column exists");
    table
        .enable_fulltext(&[("product", 2.0), ("body", 1.0)])
        .expect("text columns exist");
    table.optimize_fulltext();

    let terms = [
        "oak", "citrus", "vanilla", "tannins", "melon", "smoky", "bright", "barrel", "finish",
        "aged",
    ];
    let queries: Vec<Query> = (0..20)
        .map(|i| {
            let a = terms[i % terms.len()];
            let b = terms[(i * 3 + 1) % terms.len()];
            if i % 2 == 0 {
                Query::parse(a)
            } else {
                Query::parse(&format!("{a} {b}"))
            }
        })
        .collect();

    let plans = [
        HybridPlan::FilterFirst,
        HybridPlan::SearchFirst,
        HybridPlan::Scan,
    ];
    let grid = [0.001f64, 0.01, 0.05, 0.2, 0.5];
    let reps: usize = if rows <= 8_000 { 2 } else { 3 };

    struct Cell {
        selectivity: f64,
        cutoff: i64,
        chosen: &'static str,
        access: String,
        estimated: Option<usize>,
        est_selectivity: Option<f64>,
        plan_ms: [f64; 3],
        identical_queries: usize,
    }
    let mut cells: Vec<Cell> = Vec::new();

    for &s in &grid {
        let cutoff = (1000.0 * s) as i64;
        let filter = Filter::cmp(2, CmpOp::Lt, Value::Int(cutoff));

        // Identity pass: every query, every strategy, one list.
        let key = |r: &HybridResult| {
            r.hits
                .iter()
                .map(|h| (h.record, h.score.to_bits()))
                .collect::<Vec<_>>()
        };
        let mut identical = 0usize;
        for q in &queries {
            let hq = HybridQuery::new(q.clone(), filter.clone(), k);
            let planned = key(&table.hybrid_query(&hq).expect("fulltext enabled"));
            for p in plans {
                let forced = key(&table
                    .hybrid_query_planned(&hq, Some(p))
                    .expect("fulltext enabled"));
                assert_eq!(
                    forced,
                    planned,
                    "plan {} diverges from the planner's choice at selectivity {s}",
                    p.name(),
                );
            }
            identical += 1;
        }

        // Timing pass: whole query pool per strategy, averaged over reps.
        let mut plan_ms = [0f64; 3];
        for (pi, p) in plans.iter().enumerate() {
            let start = Instant::now();
            for _ in 0..reps {
                for q in &queries {
                    let hq = HybridQuery::new(q.clone(), filter.clone(), k);
                    std::hint::black_box(
                        table
                            .hybrid_query_planned(&hq, Some(*p))
                            .expect("fulltext enabled"),
                    );
                }
            }
            plan_ms[pi] = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
        }

        // EXPLAIN depends only on the filter; any query stands in.
        let ex = table.hybrid_explain(&HybridQuery::new(queries[0].clone(), filter.clone(), k));
        cells.push(Cell {
            selectivity: s,
            cutoff,
            chosen: ex.plan.name(),
            access: format!("{:?}", ex.access),
            estimated: ex.estimated_matches,
            est_selectivity: ex.selectivity,
            plan_ms,
            identical_queries: identical,
        });
    }

    let table_rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                format!("{:.1}%", c.selectivity * 100.0),
                c.chosen.to_string(),
                c.estimated.map_or("-".into(), |e| e.to_string()),
                format!("{:.2}", c.plan_ms[0]),
                format!("{:.2}", c.plan_ms[1]),
                format!("{:.2}", c.plan_ms[2]),
                format!("{:.1}x", c.plan_ms[1] / c.plan_ms[0].max(1e-9)),
            ]
        })
        .collect();
    print_table(
        &format!(
            "E-hybrid — {} rows, {} queries x {reps} reps, k={k} (ms per query-pool pass)",
            rows,
            queries.len(),
        ),
        &["sel", "plan", "est", "ff ms", "sf ms", "scan ms", "ff gain"],
        &table_rows,
    );

    let mut cells_json = String::new();
    for (i, c) in cells.iter().enumerate() {
        cells_json.push_str(&format!(
            "    {{ \"selectivity\": {}, \"price_cutoff\": {}, \"chosen_plan\": \"{}\", \
             \"access\": \"{}\", \"estimated_matches\": {}, \"est_selectivity\": {}, \
             \"filter_first_ms\": {:.3}, \"search_first_ms\": {:.3}, \"scan_ms\": {:.3}, \
             \"speedup_vs_search_first\": {:.2}, \"identical_queries\": {} }}{}\n",
            c.selectivity,
            c.cutoff,
            c.chosen,
            c.access,
            c.estimated.map_or("null".into(), |e| e.to_string()),
            c.est_selectivity
                .map_or("null".into(), |v| format!("{v:.4}")),
            c.plan_ms[0],
            c.plan_ms[1],
            c.plan_ms[2],
            c.plan_ms[1] / c.plan_ms[0].max(1e-9),
            c.identical_queries,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"e-hybrid\",\n",
            "  \"rows\": {},\n",
            "  \"queries\": {},\n",
            "  \"reps\": {},\n",
            "  \"k\": {},\n",
            "  \"cells\": [\n{}  ]\n",
            "}}\n"
        ),
        rows,
        queries.len(),
        reps,
        k,
        cells_json,
    );
    std::fs::write("BENCH_hybrid.json", &json).expect("write BENCH_hybrid.json");
    println!("wrote BENCH_hybrid.json");

    // The acceptance claims, enforced wherever the experiment runs.
    for c in &cells {
        assert_eq!(
            c.identical_queries,
            queries.len(),
            "every query must be bit-identical across plans at selectivity {}",
            c.selectivity,
        );
    }
    for c in cells.iter().filter(|c| c.selectivity <= 0.01) {
        assert_eq!(
            c.chosen,
            "filter-first",
            "the planner must push down a {:.1}% filter",
            c.selectivity * 100.0,
        );
        assert!(
            c.plan_ms[1] >= 3.0 * c.plan_ms[0],
            "filter-first must be >= 3x faster than search-then-post-filter \
             at selectivity {}: {:.2} ms vs {:.2} ms",
            c.selectivity,
            c.plan_ms[0],
            c.plan_ms[1],
        );
    }
    let densest = cells.last().expect("grid is non-empty");
    assert_eq!(
        densest.chosen, "search-first",
        "a 50% filter must not be enumerated through the index",
    );
}
