//! Regenerate the paper's **Fig. 1**: the WYSIWYG design interface.
//!
//! The figure shows (left) the data-source palette and (right) a
//! result layout with a hyperlink, an image, and a descriptive field,
//! plus supplemental content dropped onto the result layout. This
//! binary rebuilds that exact state through the designer's operation
//! log and prints the palette, the layout outline, and the rendered
//! design surface (placeholder chips instead of live data). Run with:
//!
//! ```text
//! cargo run -p symphony-bench --bin fig1
//! ```

use symphony_designer::canvas::DataSourceCard;
use symphony_designer::ops::{DesignOp, Designer};
use symphony_designer::{render_design_surface, render_outline, Element, Stylesheet};

fn main() {
    println!("FIG. 1 — DESIGN INTERFACE (programmatic reconstruction)\n");

    let mut designer = Designer::new();

    // Left bar: the data-source palette.
    designer.register_source(DataSourceCard {
        name: "inventory".into(),
        category: "proprietary".into(),
        fields: [
            "title",
            "genre",
            "description",
            "detail_url",
            "image_url",
            "price",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    });
    designer.register_source(DataSourceCard {
        name: "web search".into(),
        category: "web".into(),
        fields: ["url", "title", "snippet", "domain"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    });
    designer.register_source(DataSourceCard {
        name: "image search".into(),
        category: "image".into(),
        fields: ["url", "title", "image_src"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    });
    designer.register_source(DataSourceCard {
        name: "ads".into(),
        category: "ads".into(),
        fields: ["title", "target_url", "text", "display_url"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    });

    println!("Palette (drag-n-drop sources, Fig. 1 left bar):");
    for card in designer.canvas().palette() {
        println!(
            "  [{}] {} — fields: {}",
            card.category,
            card.name,
            card.fields.join(", ")
        );
    }

    // Canvas: search box + the inventory dropped as primary content.
    let root = designer.canvas().root_id();
    designer
        .apply(DesignOp::AddElement {
            parent: root,
            element: Element::search_box("Search GamerQueen…"),
        })
        .expect("ok");
    let list = designer
        .apply(DesignOp::DropSource {
            source: "inventory".into(),
            target: root,
            max_results: 10,
        })
        .expect("registered")
        .expect("created");
    println!("\nop: drop 'inventory' onto canvas (wizard proposes link+image+description+price)");

    // Supplemental content: drag web search onto the result layout.
    designer
        .apply(DesignOp::DropSource {
            source: "web search".into(),
            target: list,
            max_results: 3,
        })
        .expect("ok");
    println!("op: drop 'web search' onto the result layout (supplemental content)");

    // Styling via properties on individual elements.
    designer
        .apply(DesignOp::SetStyle {
            id: list,
            property: "border".into(),
            value: "1px solid #ccc".into(),
        })
        .expect("ok");
    println!("op: set style border on the result list");
    println!("(undo stack depth: {})", designer.undo_depth());

    println!("\nLayout outline (Fig. 1 right panel structure):");
    println!("{}", render_outline(designer.canvas().root()));

    println!("Rendered design surface (placeholder chips = field bindings):\n");
    println!(
        "{}",
        render_design_surface(designer.canvas(), &Stylesheet::new())
    );
}
