//! Cluster integration tests: bit-identical scatter-gather, replica
//! failover, partial degradation, tenant placement, and rebalancing.

use std::sync::Arc;

use symphony_cluster::{rendezvous_shard, ClusterWeb, Router};
use symphony_core::{AppBuilder, ApplicationConfig, DataSourceDef, ScatterSearch};
use symphony_designer::{Canvas, Element};
use symphony_services::rpc::{replica_endpoint, shard_endpoint};
use symphony_services::{BreakerState, FaultPlan};
use symphony_store::ingest::{ingest, DataFormat};
use symphony_store::{IndexedTable, TenantId};
use symphony_web::{Corpus, CorpusConfig, SearchConfig, SearchEngine, Topic, Vertical, WebResult};

fn corpus() -> Corpus {
    Corpus::generate(
        &CorpusConfig {
            sites_per_topic: 3,
            pages_per_site: 6,
            ..CorpusConfig::default()
        }
        .with_entities(Topic::Games, ["Galactic Raiders", "Farm Story"]),
    )
}

fn shard_fleet(corpus: &Corpus, n: usize) -> Vec<Arc<SearchEngine>> {
    SearchEngine::build_cluster(corpus, n, 1)
        .into_iter()
        .map(Arc::new)
        .collect()
}

fn result_bits(results: &[WebResult]) -> Vec<(String, u32)> {
    results
        .iter()
        .map(|r| (r.url.clone(), r.score.to_bits()))
        .collect()
}

const QUERIES: [&str; 4] = [
    "Galactic Raiders",
    "game review",
    "+space farm",
    "\"Farm Story\"",
];

#[test]
fn scatter_is_bit_identical_to_single_engine_search() {
    let corpus = corpus();
    let single = SearchEngine::new(corpus.clone());
    let config = SearchConfig::default();
    let mut costs = Vec::new();
    for n in [1usize, 2, 4] {
        let cluster = ClusterWeb::new(shard_fleet(&corpus, n), 0x5CA7);
        let mut worst = 0u32;
        for vertical in Vertical::ALL {
            for q in QUERIES {
                let out = cluster.scatter(vertical, q, &config, 10, 0);
                assert_eq!(out.shards_answered, n as u32);
                assert_eq!(out.error, None);
                assert_eq!(
                    result_bits(&out.results),
                    result_bits(&single.search(vertical, q, &config, 10)),
                    "vertical {vertical:?} query {q:?} shards {n}"
                );
                worst = worst.max(out.virtual_ms);
            }
        }
        costs.push(worst);
    }
    // Splitting documents across nodes shrinks the per-leg RPC, and
    // legs run in parallel: 4 shards must beat 1 on virtual cost.
    assert!(
        costs[2] < costs[0],
        "4-shard cost {} should undercut 1-shard cost {}",
        costs[2],
        costs[0]
    );
}

#[test]
fn primary_outage_fails_over_to_replica_with_full_results() {
    let corpus = corpus();
    let single = SearchEngine::new(corpus.clone());
    let plan = FaultPlan::new().outage(&shard_endpoint(0), 0, 1_000_000);
    let cluster = ClusterWeb::new(shard_fleet(&corpus, 3), 0x5CA7).with_fault_plan(plan);
    let config = SearchConfig::default();
    let out = cluster.scatter(Vertical::Web, "game review", &config, 10, 100);
    // The replica answered for shard 0: nothing degraded, results
    // still exactly the single-index ranking.
    assert_eq!(out.shards_answered, 3);
    assert_eq!(out.error, None);
    assert_eq!(
        result_bits(&out.results),
        result_bits(&single.search(Vertical::Web, "game review", &config, 10))
    );
}

#[test]
fn repeated_outage_trips_the_breaker_and_cheapens_failover() {
    let corpus = corpus();
    let plan = FaultPlan::new().outage(&shard_endpoint(0), 0, 10_000_000);
    let cluster = ClusterWeb::new(shard_fleet(&corpus, 2), 0x5CA7).with_fault_plan(plan);
    let config = SearchConfig::default();
    let first = cluster.scatter(Vertical::Web, "game review", &config, 10, 0);
    let mut now = 1_000u64;
    let mut open_at = None;
    for _ in 0..20 {
        let out = cluster.scatter(Vertical::Web, "game review", &config, 10, now);
        assert_eq!(out.shards_answered, 2, "replica keeps the shard serving");
        if cluster.breaker_state(&shard_endpoint(0), now) == BreakerState::Open {
            open_at = Some(now);
            break;
        }
        now += 1_000;
    }
    let open_at = open_at.expect("breaker opens under a sustained outage");
    // With the primary fast-failed by the open breaker, the next call
    // skips the burned primary attempts entirely: failover costs only
    // the replica leg, far under the first, breaker-less failover.
    let tripped = cluster.scatter(Vertical::Web, "game review", &config, 10, open_at);
    assert_eq!(tripped.shards_answered, 2);
    assert!(
        tripped.virtual_ms < first.virtual_ms,
        "post-trip cost {} should undercut first failover {}",
        tripped.virtual_ms,
        first.virtual_ms
    );
}

#[test]
fn dead_shard_degrades_to_partial_results() {
    let corpus = corpus();
    let plan = FaultPlan::new()
        .outage(&shard_endpoint(0), 0, 1_000_000)
        .outage(&replica_endpoint(0), 0, 1_000_000);
    let fleet = shard_fleet(&corpus, 3);
    let surviving: Vec<String> = fleet[1..]
        .iter()
        .flat_map(|e| e.search(Vertical::Web, "game review", &SearchConfig::default(), 50))
        .map(|r| r.url)
        .collect();
    let cluster = ClusterWeb::new(fleet, 0x5CA7).with_fault_plan(plan);
    let out = cluster.scatter(
        Vertical::Web,
        "game review",
        &SearchConfig::default(),
        10,
        100,
    );
    assert_eq!(out.shards_total, 3);
    assert_eq!(out.shards_answered, 2);
    let err = out.error.expect("partial result carries an error");
    assert!(
        err.contains("shard(s) 0"),
        "error names the dead shard: {err}"
    );
    assert!(!out.results.is_empty(), "survivors still answer");
    for r in &out.results {
        assert!(
            surviving.contains(&r.url),
            "{} can only come from a live shard",
            r.url
        );
    }
}

#[test]
fn rendezvous_placement_is_deterministic_and_spreads() {
    let shards = 4;
    let mut counts = vec![0usize; shards];
    for i in 0..200 {
        let name = format!("tenant-{i}");
        let s = rendezvous_shard(&name, shards);
        assert_eq!(s, rendezvous_shard(&name, shards), "stable placement");
        counts[s] += 1;
    }
    for (s, &c) in counts.iter().enumerate() {
        assert!(
            c >= 20,
            "shard {s} got {c}/200 tenants — rendezvous should spread"
        );
    }
    // Growing the fleet only relocates tenants, never scrambles the
    // ones whose rendezvous winner is unchanged: the 4-shard winner
    // keeps winning among the first 4 when it also wins at 5.
    for i in 0..50 {
        let name = format!("tenant-{i}");
        let four = rendezvous_shard(&name, 4);
        let five = rendezvous_shard(&name, 5);
        assert!(five == four || five == 4, "HRW minimal disruption");
    }
}

fn web_app(name: &str, owner: TenantId) -> ApplicationConfig {
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    canvas
        .insert(
            root,
            Element::result_list("web", Element::text("{title}"), 10),
        )
        .unwrap();
    AppBuilder::new(name, owner)
        .layout(canvas)
        .source(
            "web",
            DataSourceDef::WebVertical {
                vertical: Vertical::Web,
                config: SearchConfig::default(),
            },
        )
        .build()
        .unwrap()
}

fn inventory_app(name: &str, owner: TenantId) -> ApplicationConfig {
    let mut canvas = Canvas::new();
    let root = canvas.root_id();
    canvas
        .insert(
            root,
            Element::result_list("inv", Element::text("{title}"), 10),
        )
        .unwrap();
    AppBuilder::new(name, owner)
        .layout(canvas)
        .source(
            "inv",
            DataSourceDef::Proprietary {
                table: "inv".into(),
            },
        )
        .build()
        .unwrap()
}

fn inventory_table() -> IndexedTable {
    let (table, _) = ingest(
        "inv",
        "title\nGalactic Raiders deluxe\nFarm Story pack\n",
        DataFormat::Csv,
    )
    .unwrap();
    let mut indexed = IndexedTable::new(table);
    indexed.enable_fulltext(&[("title", 1.0)]).unwrap();
    indexed
}

/// Two tenant names guaranteed to land on different shards.
fn two_spread_tenants(router: &Router) -> (String, String) {
    let first = "tenant-0".to_string();
    let home = router.home_shard(&first);
    for i in 1..64 {
        let name = format!("tenant-{i}");
        if router.home_shard(&name) != home {
            return (first, name);
        }
    }
    panic!("no spread among 64 tenant names");
}

#[test]
fn router_homes_tenants_and_serves_queries_bit_identically() {
    let corpus = corpus();
    let single = SearchEngine::new(corpus.clone());
    let mut router = Router::new(&corpus, 4, 1, 0xC0FFEE);
    let (a, b) = two_spread_tenants(&router);
    let sa = router.create_tenant(&a);
    let sb = router.create_tenant(&b);
    assert_ne!(sa, sb);
    assert_eq!(router.tenant_shard(&a), Some(sa));

    let dummy = TenantId(0); // overwritten by register_app
    let app_a = router.register_app(&a, web_app("AppA", dummy)).unwrap();
    let app_b = router.register_app(&b, web_app("AppB", dummy)).unwrap();
    router.publish(app_a).unwrap();
    router.publish(app_b).unwrap();

    let resp = router.query(app_a, "Galactic Raiders").unwrap();
    assert!(!resp.trace.shed && !resp.trace.degraded);
    // The rendered impressions follow the single-index ranking: the
    // scatter path is invisible to the application.
    let expected = single.search(
        Vertical::Web,
        "Galactic Raiders",
        &SearchConfig::default(),
        10,
    );
    let urls: Vec<&str> = resp
        .impressions
        .iter()
        .filter_map(|i| i.url.as_deref())
        .collect();
    let expected_urls: Vec<&str> = expected.iter().map(|r| r.url.as_str()).collect();
    assert_eq!(urls, expected_urls);
    assert!(router.query(app_b, "farm").is_ok());

    // Folded observability: both apps' queries show up, weighted into
    // one cluster summary; the repeat query hits an L1 cache somewhere
    // in the fleet and the folded cache stats see it.
    router.query(app_a, "Galactic Raiders").unwrap();
    let summary = router.traffic_summary();
    assert_eq!(summary.app, "cluster");
    assert_eq!(summary.queries, 3);
    assert_eq!(summary.shed_queries, 0);
    let cache = router.cache_stats();
    assert!(cache.hits >= 1, "repeat query hits the app cache");
    assert!(cache.misses >= 2, "first queries miss");
}

#[test]
fn move_tenant_rehomes_tables_apps_and_routes() {
    let corpus = corpus();
    let mut router = Router::new(&corpus, 3, 1, 0xC0FFEE);
    let name = "alice";
    let home = router.create_tenant(name);
    router.upload_table(name, inventory_table()).unwrap();
    let app = router
        .register_app(name, inventory_app("Shop", TenantId(0)))
        .unwrap();
    router.publish(app).unwrap();
    let before = router.query(app, "galactic").unwrap();
    assert!(before.html.contains("Galactic Raiders deluxe"));

    let target = (home + 1) % router.num_shards();
    router.move_tenant(name, target).unwrap();
    assert_eq!(router.tenant_shard(name), Some(target));
    // Same global app id, same table, new shard.
    let after = router.query(app, "galactic").unwrap();
    assert!(after.html.contains("Galactic Raiders deluxe"));
    assert!(!after.trace.degraded, "table moved with the tenant");
    // Moving to the current shard is a no-op.
    router.move_tenant(name, target).unwrap();
    assert_eq!(router.tenant_shard(name), Some(target));
}

mod sharded_equals_single {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The heart of the tentpole guarantee, under random corpora:
        /// for every shard count 1–8, scatter-gather over the
        /// document-partitioned fleet returns exactly — bit for bit —
        /// what one index over the whole corpus returns.
        #[test]
        fn sharded_equals_single(
            seed in 0u64..1_000,
            sites in 1usize..4,
            pages in 2usize..7,
            shards in 1usize..=8,
            k in 1usize..16,
            query_idx in 0usize..6,
            vertical_idx in 0usize..4,
        ) {
            let corpus = Corpus::generate(
                &CorpusConfig {
                    seed,
                    sites_per_topic: sites,
                    pages_per_site: pages,
                    ..CorpusConfig::default()
                }
                .with_entities(Topic::Games, ["Galactic Raiders"]),
            );
            let queries = [
                "Galactic Raiders",
                "game review",
                "+space farm",
                "\"Galactic Raiders\"",
                "lasers -golf",
                "news trailer",
            ];
            let query = queries[query_idx];
            let vertical = Vertical::ALL[vertical_idx];
            let single = SearchEngine::new(corpus.clone());
            let cluster = ClusterWeb::new(shard_fleet(&corpus, shards), seed);
            let config = SearchConfig::default();
            let out = cluster.scatter(vertical, query, &config, k, 0);
            prop_assert_eq!(out.shards_answered as usize, shards);
            prop_assert_eq!(out.error, None);
            prop_assert_eq!(
                result_bits(&out.results),
                result_bits(&single.search(vertical, query, &config, k))
            );
        }
    }
}

#[test]
fn full_shard_outage_serves_degraded_queries_through_the_router() {
    let corpus = corpus();
    let plan = FaultPlan::new()
        .outage(&shard_endpoint(1), 0, 10_000_000)
        .outage(&replica_endpoint(1), 0, 10_000_000);
    let mut router = Router::with_faults(&corpus, 3, 1, 0xC0FFEE, plan);
    let name = "tenant-0";
    router.create_tenant(name);
    let app = router
        .register_app(name, web_app("Chaos", TenantId(0)))
        .unwrap();
    router.publish(app).unwrap();
    let resp = router.query(app, "game review").unwrap();
    // The query serves: partial results, marked degraded, with the
    // silent shard named in the trace.
    assert!(resp.trace.degraded, "shard loss degrades, never errors");
    assert!(!resp.trace.shed);
    let rendered = format!("{:?}", resp.trace);
    assert!(
        rendered.contains("shard(s) 1"),
        "trace names the dead shard: {rendered}"
    );
    let summary = router.app_traffic_summary(app).unwrap();
    assert_eq!(summary.degraded_queries, 1);
}
