//! Shard search RPC: the wire codec and the per-node service.
//!
//! A shard node is just another simulated service: it registers on the
//! transport like the pricing or inventory services do, speaks the
//! same string-keyed record protocol, and therefore composes with
//! every resilience mechanism the transport stack already has —
//! breakers, retries, fault windows. What makes it special is the
//! codec: raw BM25 scores cross the wire as IEEE-754 bit patterns
//! (see [`symphony_services::rpc`]), because the gather side re-sorts
//! merged candidates by those floats and a lossy decimal round-trip
//! would reorder ties and break the bit-identity guarantee.

use std::sync::Arc;

use symphony_services::rpc::{decode_f32, decode_i64, decode_u64, encode_f32};
use symphony_services::{
    OperationDesc, Protocol, Service, ServiceDescription, ServiceFault, ServiceRecord,
    ServiceRequest, ServiceResponse,
};
use symphony_web::{PoolEntry, SearchConfig, SearchEngine, ShardPool, Vertical, WebResult};

/// Separator for list-valued request params (domains, terms). Not a
/// character that appears in domain names or analyzed query terms.
const LIST_SEP: char = '\x1f';

/// Parse a vertical from its lowercase wire name.
pub fn vertical_from_name(name: &str) -> Option<Vertical> {
    Vertical::ALL.into_iter().find(|v| v.name() == name)
}

/// Build the `/search` request for one scatter leg.
pub fn search_request(
    vertical: Vertical,
    query: &str,
    config: &SearchConfig,
    k: usize,
) -> ServiceRequest {
    let k = k.to_string();
    let sites = config.site_restrict.join(&LIST_SEP.to_string());
    let augment = config.augment_terms.join(&LIST_SEP.to_string());
    let prefer = config.prefer_sites.join(&LIST_SEP.to_string());
    ServiceRequest::get(
        "/search",
        &[
            ("vertical", vertical.name()),
            ("q", query),
            ("k", &k),
            ("sites", &sites),
            ("augment", &augment),
            ("prefer", &prefer),
        ],
    )
}

fn split_list(raw: &str) -> Vec<String> {
    if raw.is_empty() {
        Vec::new()
    } else {
        raw.split(LIST_SEP).map(str::to_string).collect()
    }
}

fn field<'a>(record: &'a ServiceRecord, name: &str) -> Option<&'a str> {
    record
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Encode a shard's candidate pool as wire records: one header record
/// carrying the shard's MaxScore merge bound, then one record per
/// pool entry in pool order.
pub fn encode_pool(pool: &ShardPool) -> ServiceResponse {
    let mut records = Vec::with_capacity(pool.entries.len() + 1);
    records.push(vec![
        ("kind".to_string(), "pool".to_string()),
        ("bound".to_string(), encode_f32(pool.bound)),
        ("n".to_string(), pool.entries.len().to_string()),
    ]);
    for e in &pool.entries {
        let r = &e.result;
        let mut rec: ServiceRecord = vec![
            ("page".to_string(), e.page.to_string()),
            ("raw".to_string(), encode_f32(e.raw)),
            ("score".to_string(), encode_f32(r.score)),
            ("url".to_string(), r.url.clone()),
            ("title".to_string(), r.title.clone()),
            ("snippet".to_string(), r.snippet.clone()),
            ("domain".to_string(), r.domain.clone()),
        ];
        if let Some(src) = &r.image_src {
            rec.push(("image_src".to_string(), src.clone()));
        }
        if let Some(d) = r.duration_s {
            rec.push(("duration_s".to_string(), d.to_string()));
        }
        if let Some(d) = r.date {
            rec.push(("date".to_string(), d.to_string()));
        }
        records.push(rec);
    }
    ServiceResponse::records(records)
}

/// Decode a pool framed by [`encode_pool`]. `None` on any malformed
/// record — a garbled shard answer must read as a failed shard, never
/// as a silently truncated pool.
pub fn decode_pool(response: &ServiceResponse) -> Option<ShardPool> {
    let header = response.records.first()?;
    if field(header, "kind") != Some("pool") {
        return None;
    }
    let bound = decode_f32(field(header, "bound")?)?;
    let n: usize = field(header, "n")?.parse().ok()?;
    let body = &response.records[1..];
    if body.len() != n {
        return None;
    }
    let mut entries = Vec::with_capacity(n);
    for rec in body {
        entries.push(PoolEntry {
            page: decode_u64(field(rec, "page")?)? as usize,
            raw: decode_f32(field(rec, "raw")?)?,
            result: WebResult {
                url: field(rec, "url")?.to_string(),
                title: field(rec, "title")?.to_string(),
                snippet: field(rec, "snippet")?.to_string(),
                domain: field(rec, "domain")?.to_string(),
                score: decode_f32(field(rec, "score")?)?,
                image_src: field(rec, "image_src").map(str::to_string),
                duration_s: field(rec, "duration_s").and_then(|v| decode_u64(v).map(|d| d as u32)),
                date: field(rec, "date").and_then(decode_i64),
            },
        });
    }
    Some(ShardPool { entries, bound })
}

/// One shard node: serves `/search` over its slice of the corpus,
/// returning the shard-local candidate pool plus merge bound.
#[derive(Debug, Clone)]
pub struct ShardSearchService {
    engine: Arc<SearchEngine>,
}

impl ShardSearchService {
    /// Node over one shard's engine (primary and replica wrap clones
    /// of the same `Arc`).
    pub fn new(engine: Arc<SearchEngine>) -> ShardSearchService {
        ShardSearchService { engine }
    }
}

impl Service for ShardSearchService {
    fn describe(&self) -> ServiceDescription {
        ServiceDescription {
            name: "Shard search node".into(),
            protocol: Protocol::Rest,
            operations: vec![OperationDesc {
                name: "/search".into(),
                params: vec![
                    "vertical".into(),
                    "q".into(),
                    "k".into(),
                    "sites".into(),
                    "augment".into(),
                    "prefer".into(),
                ],
                returns: vec![
                    "page".into(),
                    "raw".into(),
                    "score".into(),
                    "url".into(),
                    "title".into(),
                    "snippet".into(),
                    "domain".into(),
                ],
            }],
        }
    }

    fn handle(&self, request: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
        let bad = |msg: &str| ServiceFault {
            code: 400,
            message: msg.into(),
        };
        let vertical = request
            .param("vertical")
            .and_then(vertical_from_name)
            .ok_or_else(|| bad("bad vertical"))?;
        let query = request.param("q").ok_or_else(|| bad("missing q"))?;
        let k: usize = request
            .param("k")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad k"))?;
        let config = SearchConfig {
            site_restrict: split_list(request.param("sites").unwrap_or_default()),
            augment_terms: split_list(request.param("augment").unwrap_or_default()),
            prefer_sites: split_list(request.param("prefer").unwrap_or_default()),
        };
        let pool = self.engine.search_pool(vertical, query, &config, k);
        Ok(encode_pool(&pool))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_pool() -> ShardPool {
        ShardPool {
            entries: vec![
                PoolEntry {
                    page: 7,
                    raw: 3.25,
                    result: WebResult {
                        url: "https://ign.com/raiders".into(),
                        title: "Galactic Raiders review".into(),
                        snippet: "A <b>space</b> shooter".into(),
                        domain: "ign.com".into(),
                        score: 4.5,
                        image_src: None,
                        duration_s: None,
                        date: Some(1_700_000_000),
                    },
                },
                PoolEntry {
                    page: 0,
                    raw: f32::from_bits(0x3f80_0001), // exercises exactness
                    result: WebResult {
                        url: "https://tube.example/clip".into(),
                        title: "Trailer".into(),
                        snippet: "watch".into(),
                        domain: "tube.example".into(),
                        score: 0.125,
                        image_src: Some("https://tube.example/clip.jpg".into()),
                        duration_s: Some(214),
                        date: None,
                    },
                },
            ],
            bound: 2.875,
        }
    }

    #[test]
    fn pool_roundtrips_bit_exactly() {
        let pool = a_pool();
        let decoded = decode_pool(&encode_pool(&pool)).expect("roundtrip");
        assert_eq!(decoded.bound.to_bits(), pool.bound.to_bits());
        assert_eq!(decoded.entries.len(), pool.entries.len());
        for (d, e) in decoded.entries.iter().zip(&pool.entries) {
            assert_eq!(d.page, e.page);
            assert_eq!(d.raw.to_bits(), e.raw.to_bits());
            assert_eq!(d.result.score.to_bits(), e.result.score.to_bits());
            assert_eq!(d.result, e.result);
        }
    }

    #[test]
    fn nonfinite_bounds_survive_the_wire() {
        let mut pool = a_pool();
        pool.bound = f32::NEG_INFINITY;
        let decoded = decode_pool(&encode_pool(&pool)).expect("roundtrip");
        assert!(decoded.bound.is_infinite() && decoded.bound < 0.0);
    }

    #[test]
    fn truncated_bodies_are_rejected() {
        let mut resp = encode_pool(&a_pool());
        resp.records.pop();
        assert!(decode_pool(&resp).is_none(), "body shorter than header n");
        assert!(decode_pool(&ServiceResponse::empty()).is_none());
    }

    #[test]
    fn config_lists_survive_the_request_framing() {
        let config = SearchConfig::default()
            .restrict_to(["gamespot.com", "ign.com"])
            .augment(["review"])
            .prefer(["ign.com"]);
        let req = search_request(Vertical::News, "space raiders", &config, 12);
        assert_eq!(req.param("vertical"), Some("news"));
        assert_eq!(req.param("q"), Some("space raiders"));
        assert_eq!(req.param("k"), Some("12"));
        assert_eq!(
            split_list(req.param("sites").unwrap()),
            vec!["gamespot.com".to_string(), "ign.com".to_string()]
        );
        assert_eq!(split_list(req.param("augment").unwrap()), vec!["review"]);
        assert_eq!(split_list(req.param("prefer").unwrap()), vec!["ign.com"]);
        assert_eq!(split_list(""), Vec::<String>::new());
    }
}
