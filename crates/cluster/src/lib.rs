//! # symphony-cluster
//!
//! Multi-node serving for the Symphony reproduction: N independent
//! [`Platform`](symphony_core::Platform) shards behind a [`Router`].
//!
//! The paper runs Symphony on shared search infrastructure; this
//! crate reproduces the serving topology that implies:
//!
//! * **Document-partitioned web search.** Every shard indexes a slice
//!   of the synthetic web ([`SearchEngine::build_cluster`]
//!   (symphony_web::SearchEngine::build_cluster)); queries scatter to
//!   all shards and gather under a rank-safe top-k merge that reuses
//!   each shard's MaxScore threshold as a merge bound. Merged results
//!   are **bit-identical** to a single-index search.
//! * **Tenant-partitioned hosting.** A tenant's tables, apps, and
//!   logs live whole on a rendezvous-hashed home shard, with explicit
//!   rebalancing ([`Router::move_tenant`]).
//! * **Resilient inter-node RPC.** Shard calls travel the simulated
//!   transport from `symphony-services`, composing with circuit
//!   breakers, retries, and fault plans; a dead shard fails over to
//!   its replica, and a fully silent shard degrades the query to a
//!   partial result instead of an error.

#![warn(missing_docs)]

pub mod router;
pub mod scatter;
pub mod wire;

pub use router::{rendezvous_shard, Router};
pub use scatter::{shard_rpc_ms, ClusterWeb, GATHER_MS};
pub use wire::{decode_pool, encode_pool, ShardSearchService};
