//! Scatter-gather over the shard fleet.
//!
//! [`ClusterWeb`] owns the inter-node plumbing: a simulated transport
//! with one primary and one replica endpoint per shard, a breaker
//! registry watching each endpoint, and the resilient call policy the
//! legs run under. A web-vertical query scatters to every shard,
//! gathers the per-shard candidate pools, and merges them rank-safely
//! with [`SearchEngine::merge_pools`] — bit-identical to a
//! single-index search whenever every shard answers.
//!
//! Failure semantics ride the existing service machinery rather than
//! new code paths: a dead primary burns its retries, the breaker trips
//! and starts fast-failing it for free, and the leg falls over to the
//! replica endpoint. A shard whose primary *and* replica both fail is
//! simply absent from the merge — the query degrades to a partial
//! result whose error names the silent shards, it does not fail.
//!
//! Virtual time follows the platform's parallel fan-out convention:
//! the scatter costs the *max* over per-shard call chains plus a
//! constant gather step, because the legs run concurrently on the
//! virtual clock.

use std::sync::Arc;

use symphony_core::{ScatterOutcome, ScatterSearch};
use symphony_services::{
    BreakerConfig, BreakerRegistry, BreakerState, CallPolicy, FaultPlan, LatencyModel,
    ResilienceContext, ServiceClient, SimulatedTransport,
};
use symphony_web::{SearchConfig, SearchEngine, ShardPool, Vertical};

use crate::wire::{decode_pool, search_request, ShardSearchService};
use symphony_services::rpc::{replica_endpoint, shard_endpoint};

/// Virtual cost of the gather step (pool merge at the router), on top
/// of the slowest shard leg.
pub const GATHER_MS: u32 = 2;

/// Virtual latency of one shard-node search RPC, scaled to the number
/// of web documents the node's index holds. Calibrated so a node
/// holding the full default bench corpus (~200 pages) costs
/// [`symphony_core::WEB_MS`] — a 1-shard cluster prices like the
/// single-node engine, and an `n`-shard split divides the
/// document-dependent part by `n`.
pub fn shard_rpc_ms(web_docs: usize) -> u32 {
    5 + (web_docs * 3 / 20) as u32
}

/// The shard fleet behind a router: N document-partitioned search
/// nodes (each with a replica), reachable only through the simulated
/// transport.
pub struct ClusterWeb {
    shards: Vec<Arc<SearchEngine>>,
    transport: SimulatedTransport,
    breakers: BreakerRegistry,
    policy: CallPolicy,
}

impl std::fmt::Debug for ClusterWeb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterWeb")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl ClusterWeb {
    /// Bring up the fleet over pre-built shard engines (see
    /// [`SearchEngine::build_cluster`]): registers a primary and a
    /// replica node per shard, both serving the same slice.
    pub fn new(shards: Vec<Arc<SearchEngine>>, seed: u64) -> ClusterWeb {
        assert!(!shards.is_empty(), "a cluster needs at least one shard");
        let mut transport = SimulatedTransport::new(seed);
        let mut slowest_base = 0u32;
        for (i, engine) in shards.iter().enumerate() {
            let latency = LatencyModel {
                base_ms: shard_rpc_ms(engine.doc_count(Vertical::Web)),
                jitter_ms: 0,
                failure_rate: 0.0,
            };
            slowest_base = slowest_base.max(latency.base_ms);
            transport.register(
                &shard_endpoint(i),
                Box::new(ShardSearchService::new(engine.clone())),
                latency.clone(),
            );
            transport.register(
                &replica_endpoint(i),
                Box::new(ShardSearchService::new(engine.clone())),
                latency,
            );
        }
        ClusterWeb {
            shards,
            transport,
            breakers: BreakerRegistry::new(BreakerConfig::default()),
            // Timeout scales with the fleet's slowest node: an outage
            // charges the client its full timeout per attempt, so an
            // oversized timeout would turn every unnoticed dead node
            // into a virtual-minutes stall before the breaker trips.
            policy: CallPolicy {
                timeout_ms: (slowest_base * 4).max(50),
                retries: 1,
                backoff_base_ms: 0,
                backoff_cap_ms: 0,
                hedge_after_ms: None,
            },
        }
    }

    /// Schedule chaos windows (node outages, latency spikes) on the
    /// fleet's transport. Endpoint names come from
    /// [`shard_endpoint`] / [`replica_endpoint`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> ClusterWeb {
        self.transport.set_fault_plan(plan);
        self
    }

    /// Number of shards in the fleet.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard engines, in shard order.
    pub fn shard_engines(&self) -> &[Arc<SearchEngine>] {
        &self.shards
    }

    /// Breaker state of one endpoint at `now_ms` (tests, dashboards).
    pub fn breaker_state(&self, endpoint: &str, now_ms: u64) -> BreakerState {
        self.breakers.state(endpoint, now_ms)
    }

    /// Run one leg against shard `i`: primary first, replica on
    /// failure (a tripped breaker fast-fails the primary for free, so
    /// steady-state failover costs only the replica call). Returns the
    /// decoded pool (if any answer arrived) and the virtual cost of
    /// the whole chain.
    fn call_shard(
        &self,
        i: usize,
        vertical: Vertical,
        query: &str,
        config: &SearchConfig,
        k: usize,
        now_ms: u64,
    ) -> (Option<ShardPool>, u32) {
        let request = search_request(vertical, query, config, k);
        let client = ServiceClient::with_policy(&self.transport, self.policy);
        let ctx = ResilienceContext {
            now_ms,
            budget_ms: None,
            max_retries: None,
            breakers: Some(&self.breakers),
        };
        let mut spent = 0u32;
        for endpoint in [shard_endpoint(i), replica_endpoint(i)] {
            let ctx = ResilienceContext {
                now_ms: now_ms + spent as u64,
                ..ctx
            };
            match client.call_resilient(&endpoint, &request, &ctx) {
                Ok(out) => {
                    spent = spent.saturating_add(out.total_latency_ms);
                    // A garbled frame reads as a failed node, not as a
                    // truncated pool: fall through to the replica.
                    match decode_pool(&out.response) {
                        Some(pool) => return (Some(pool), spent),
                        None => continue,
                    }
                }
                Err((_, burned)) => spent = spent.saturating_add(burned),
            }
        }
        (None, spent)
    }
}

impl ScatterSearch for ClusterWeb {
    fn scatter(
        &self,
        vertical: Vertical,
        query: &str,
        config: &SearchConfig,
        k: usize,
        now_ms: u64,
    ) -> ScatterOutcome {
        let mut pools = Vec::with_capacity(self.shards.len());
        let mut silent: Vec<usize> = Vec::new();
        let mut slowest = 0u32;
        for i in 0..self.shards.len() {
            let (pool, spent) = self.call_shard(i, vertical, query, config, k, now_ms);
            slowest = slowest.max(spent);
            match pool {
                Some(p) => pools.push(p),
                None => silent.push(i),
            }
        }
        let shards_total = self.shards.len() as u32;
        let shards_answered = shards_total - silent.len() as u32;
        let error = if silent.is_empty() {
            None
        } else {
            let ids: Vec<String> = silent.iter().map(usize::to_string).collect();
            Some(format!(
                "partial web results: shard(s) {} unanswered",
                ids.join(",")
            ))
        };
        ScatterOutcome {
            results: SearchEngine::merge_pools(pools, k),
            virtual_ms: slowest.saturating_add(GATHER_MS),
            shards_answered,
            shards_total,
            error,
        }
    }
}
