//! The tenant router: N independent [`Platform`] shards behind one
//! front door.
//!
//! Two placement regimes coexist, mirroring the data they place:
//!
//! * **Web verticals are document-partitioned.** Every shard indexes a
//!   slice of the corpus ([`SearchEngine::build_cluster`]), and every
//!   web query scatters to all shards through [`ClusterWeb`].
//! * **Tenant tables are placed whole.** A tenant's tables, apps, and
//!   interaction logs live together on one *home shard*, chosen by
//!   rendezvous hashing over the tenant name — deterministic, uniform,
//!   and stable under explicit rebalancing ([`Router::move_tenant`]).
//!
//! Each shard keeps its own virtual clock. Tenants homed on different
//! shards advance independently — that is how wall-clock parallelism
//! across nodes appears under virtual time, and why an N-shard fleet
//! shows aggregate throughput gains in experiment E-shard.

use std::collections::BTreeMap;
use std::sync::Arc;

use symphony_core::{
    AppId, ApplicationConfig, CacheStats, Impression, Platform, PlatformError, QueryHost,
    QueryResponse, QuotaConfig, TrafficSummary,
};
use symphony_services::FaultPlan;
use symphony_store::{AccessKey, IndexedTable, TenantId};
use symphony_web::{Corpus, SearchEngine};

use crate::scatter::ClusterWeb;

/// Where a tenant lives.
#[derive(Debug, Clone)]
struct TenantHome {
    shard: usize,
    id: TenantId,
    key: AccessKey,
}

/// One router-global application: which shard hosts it, under which
/// shard-local id, and everything needed to re-register it elsewhere.
#[derive(Debug, Clone)]
struct AppRoute {
    shard: usize,
    local: AppId,
    tenant: String,
    config: ApplicationConfig,
    published: bool,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a, then one splitmix round to spread short names.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(h)
}

/// Rendezvous (highest-random-weight) choice of home shard for a
/// tenant name: every router instance computes the same placement,
/// and changing the shard count only moves the minimal set of tenants.
pub fn rendezvous_shard(tenant: &str, num_shards: usize) -> usize {
    assert!(num_shards > 0, "placement needs at least one shard");
    let th = hash_str(tenant);
    (0..num_shards)
        .max_by_key(|&s| splitmix64(th ^ (s as u64).wrapping_mul(0xA24B_AED4_963E_E407)))
        .expect("non-empty shard range")
}

/// N platform shards behind one routing layer.
pub struct Router {
    shards: Vec<Platform>,
    cluster: Arc<ClusterWeb>,
    tenants: BTreeMap<String, TenantHome>,
    routes: Vec<AppRoute>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("shards", &self.shards.len())
            .field("tenants", &self.tenants.len())
            .field("apps", &self.routes.len())
            .finish()
    }
}

impl Router {
    /// Bring up an `num_shards`-node fleet over `corpus`: each shard
    /// indexes its document slice, hosts its tenants, and serves web
    /// queries by scattering through the shared [`ClusterWeb`].
    pub fn new(corpus: &Corpus, num_shards: usize, threads: usize, seed: u64) -> Router {
        Self::build(corpus, num_shards, threads, seed, None)
    }

    /// Like [`Router::new`], with chaos windows scheduled on the
    /// inter-node transport (shard outages, latency spikes).
    pub fn with_faults(
        corpus: &Corpus,
        num_shards: usize,
        threads: usize,
        seed: u64,
        plan: FaultPlan,
    ) -> Router {
        Self::build(corpus, num_shards, threads, seed, Some(plan))
    }

    fn build(
        corpus: &Corpus,
        num_shards: usize,
        threads: usize,
        seed: u64,
        plan: Option<FaultPlan>,
    ) -> Router {
        let engines: Vec<Arc<SearchEngine>> =
            SearchEngine::build_cluster(corpus, num_shards, threads)
                .into_iter()
                .map(Arc::new)
                .collect();
        let mut cluster = ClusterWeb::new(engines.clone(), seed);
        if let Some(plan) = plan {
            cluster = cluster.with_fault_plan(plan);
        }
        let cluster = Arc::new(cluster);
        let shards = engines
            .into_iter()
            .map(|engine| {
                let mut p = Platform::new(engine);
                p.set_scatter(cluster.clone());
                p
            })
            .collect();
        Router {
            shards,
            cluster,
            tenants: BTreeMap::new(),
            routes: Vec::new(),
        }
    }

    /// Number of platform shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The scatter-gather fleet (breaker states, shard engines).
    pub fn cluster(&self) -> &ClusterWeb {
        &self.cluster
    }

    /// Direct access to one shard platform (tests, maintenance).
    pub fn shard(&self, i: usize) -> &Platform {
        &self.shards[i]
    }

    /// Apply a quota config to every shard.
    pub fn with_quotas(mut self, quotas: QuotaConfig) -> Router {
        self.shards = self
            .shards
            .into_iter()
            .map(|p| p.with_quotas(quotas))
            .collect();
        self
    }

    /// Apply a source-cache (L2) config to every shard.
    pub fn with_source_cache(mut self, config: symphony_core::SourceCacheConfig) -> Router {
        self.shards = self
            .shards
            .into_iter()
            .map(|p| p.with_source_cache(config))
            .collect();
        self
    }

    /// The home shard placement for `tenant` (whether or not it
    /// exists yet).
    pub fn home_shard(&self, tenant: &str) -> usize {
        rendezvous_shard(tenant, self.shards.len())
    }

    /// Current shard of an existing tenant (differs from
    /// [`Router::home_shard`] after an explicit move).
    pub fn tenant_shard(&self, tenant: &str) -> Option<usize> {
        self.tenants.get(tenant).map(|h| h.shard)
    }

    fn home(&self, tenant: &str) -> Result<&TenantHome, PlatformError> {
        self.tenants
            .get(tenant)
            .ok_or_else(|| PlatformError::InvalidConfig(format!("unknown tenant {tenant:?}")))
    }

    fn route(&self, id: AppId) -> Result<&AppRoute, PlatformError> {
        self.routes
            .get(id.0 as usize)
            .ok_or(PlatformError::AppNotFound(id.0))
    }

    /// Create `tenant` on its rendezvous home shard. Returns the shard
    /// index it landed on.
    pub fn create_tenant(&mut self, tenant: &str) -> usize {
        let shard = self.home_shard(tenant);
        let (id, key) = self.shards[shard].create_tenant(tenant);
        self.tenants
            .insert(tenant.to_string(), TenantHome { shard, id, key });
        shard
    }

    /// Upload a table into `tenant`'s space on its current shard.
    pub fn upload_table(&mut self, tenant: &str, table: IndexedTable) -> Result<(), PlatformError> {
        let TenantHome { shard, id, key } = self.home(tenant)?.clone();
        self.shards[shard].upload_table(id, &key, table)
    }

    /// Register an application for `tenant` on its current shard.
    /// `config.owner` is overwritten with the tenant's shard-local id;
    /// callers address apps only through the returned router-global
    /// [`AppId`].
    pub fn register_app(
        &mut self,
        tenant: &str,
        mut config: ApplicationConfig,
    ) -> Result<AppId, PlatformError> {
        let TenantHome { shard, id, .. } = self.home(tenant)?.clone();
        config.owner = id;
        let local = self.shards[shard].register_app(config.clone())?;
        let global = AppId(self.routes.len() as u32);
        self.routes.push(AppRoute {
            shard,
            local,
            tenant: tenant.to_string(),
            config,
            published: false,
        });
        Ok(global)
    }

    /// Publish an application.
    pub fn publish(&mut self, id: AppId) -> Result<(), PlatformError> {
        let (shard, local) = {
            let r = self.route(id)?;
            (r.shard, r.local)
        };
        self.shards[shard].publish(local)?;
        self.routes[id.0 as usize].published = true;
        Ok(())
    }

    /// Serve one query, on the app's home shard.
    pub fn query(&self, id: AppId, query: &str) -> Result<Arc<QueryResponse>, PlatformError> {
        let r = self.route(id)?;
        self.shards[r.shard].query(r.local, query)
    }

    /// Record a click, on the app's home shard.
    pub fn click(
        &self,
        id: AppId,
        query: &str,
        impression: &Impression,
    ) -> Result<Option<u32>, PlatformError> {
        let r = self.route(id)?;
        self.shards[r.shard].click(r.local, query, impression)
    }

    /// Warm every shard for serving. Returns tables visited.
    pub fn warmup(&mut self) -> usize {
        self.shards.iter_mut().map(|s| s.warmup()).sum()
    }

    /// Move `tenant` — tables, apps, publication state — to
    /// `to_shard`, the explicit rebalancing path. Tables drain from
    /// the old shard's space and re-upload on the new one; apps are
    /// re-registered under the tenant's new shard-local id and the old
    /// copies unpublished. Router-global [`AppId`]s stay valid across
    /// the move.
    pub fn move_tenant(&mut self, tenant: &str, to_shard: usize) -> Result<(), PlatformError> {
        if to_shard >= self.shards.len() {
            return Err(PlatformError::InvalidConfig(format!(
                "shard {to_shard} out of range ({} shards)",
                self.shards.len()
            )));
        }
        let old = self.home(tenant)?.clone();
        if old.shard == to_shard {
            return Ok(());
        }
        // Drain tables from the old space.
        let tables: Vec<IndexedTable> = {
            let space = self.shards[old.shard]
                .store_mut()
                .space_mut(old.id, &old.key)
                .map_err(PlatformError::Store)?;
            let names: Vec<String> = space.table_names().iter().map(|s| s.to_string()).collect();
            names.iter().filter_map(|n| space.drop_table(n)).collect()
        };
        // Land the tenant on the new shard.
        let (new_id, new_key) = self.shards[to_shard].create_tenant(tenant);
        for table in tables {
            self.shards[to_shard].upload_table(new_id, &new_key, table)?;
        }
        // Re-home every app: register under the new owner id, restore
        // publication, retire the old copy.
        for route in self.routes.iter_mut().filter(|r| r.tenant == tenant) {
            let mut config = route.config.clone();
            config.owner = new_id;
            let new_local = self.shards[to_shard].register_app(config.clone())?;
            if route.published {
                self.shards[to_shard].publish(new_local)?;
                self.shards[old.shard].unpublish(route.local)?;
            }
            route.shard = to_shard;
            route.local = new_local;
            route.config = config;
        }
        self.tenants.insert(
            tenant.to_string(),
            TenantHome {
                shard: to_shard,
                id: new_id,
                key: new_key,
            },
        );
        Ok(())
    }

    /// Traffic summary of one application (served by its home shard).
    pub fn app_traffic_summary(&self, id: AppId) -> Result<TrafficSummary, PlatformError> {
        let r = self.route(id)?;
        self.shards[r.shard].traffic_summary(r.local)
    }

    /// Cluster-wide traffic summary: every app's per-shard summary
    /// folded into one. Counters sum, so the derived shed/degraded/
    /// error rates come out weighted by each shard's query volume.
    pub fn traffic_summary(&self) -> TrafficSummary {
        let mut total = TrafficSummary {
            app: "cluster".to_string(),
            ..TrafficSummary::default()
        };
        for i in 0..self.routes.len() {
            if let Ok(s) = self.app_traffic_summary(AppId(i as u32)) {
                total.merge(&s);
            }
        }
        total
    }

    /// Cluster-wide response-cache stats: per-app L1 caches folded
    /// across every shard.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for r in &self.routes {
            if let Some(s) = self.shards[r.shard].cache_stats(r.local) {
                total.merge(&s);
            }
        }
        total
    }
}

impl QueryHost for Router {
    fn host_clock_ms(&self, app: AppId) -> u64 {
        self.route(app)
            .map(|r| self.shards[r.shard].clock_ms())
            .unwrap_or(0)
    }

    fn host_advance_clock(&self, app: AppId, ms: u64) {
        if let Ok(r) = self.route(app) {
            self.shards[r.shard].advance_clock(ms);
        }
    }

    fn host_query(&self, app: AppId, query: &str) -> Result<Arc<QueryResponse>, PlatformError> {
        self.query(app, query)
    }

    fn host_click(
        &self,
        app: AppId,
        query: &str,
        impression: &Impression,
    ) -> Result<Option<u32>, PlatformError> {
        self.click(app, query, impression)
    }

    fn host_span_end(&self) -> u64 {
        self.shards
            .iter()
            .map(Platform::clock_ms)
            .max()
            .unwrap_or(0)
    }
}
