//! Property tests for the service substrate: virtual-time accounting
//! invariants under arbitrary latency/failure/policy combinations.

use proptest::prelude::*;
use symphony_services::{
    CallPolicy, LatencyModel, OperationDesc, PricingService, Protocol, Service, ServiceClient,
    ServiceError, ServiceFault, ServiceRequest, ServiceResponse, SimulatedTransport,
};

struct Echo;
impl Service for Echo {
    fn describe(&self) -> symphony_services::ServiceDescription {
        symphony_services::ServiceDescription {
            name: "Echo".into(),
            protocol: Protocol::Rest,
            operations: vec![OperationDesc {
                name: "/echo".into(),
                params: vec!["q".into()],
                returns: vec!["echo".into()],
            }],
        }
    }
    fn handle(&self, request: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
        Ok(ServiceResponse::single(&[(
            "echo",
            request.param("q").unwrap_or(""),
        )]))
    }
}

proptest! {
    /// Success latency is bounded by `attempts * timeout` and at least
    /// the base latency; the response is always intact.
    #[test]
    fn latency_accounting_bounds(
        base in 1u32..200,
        jitter in 0u32..100,
        failure in 0.0f64..0.9,
        timeout in 50u32..400,
        retries in 0u32..4,
        seed in 0u64..1000,
    ) {
        let mut t = SimulatedTransport::new(seed);
        t.register(
            "svc",
            Box::new(Echo),
            LatencyModel { base_ms: base, jitter_ms: jitter, failure_rate: failure },
        );
        let client = ServiceClient::with_policy(
            &t,
            CallPolicy { timeout_ms: timeout, retries, ..CallPolicy::default() },
        );
        let attempts_allowed = retries + 1;
        match client.call("svc", &ServiceRequest::get("/echo", &[("q", "hello")])) {
            Ok(out) => {
                prop_assert_eq!(out.response.first_field("echo"), Some("hello"));
                prop_assert!(out.attempts >= 1 && out.attempts <= attempts_allowed);
                prop_assert!(out.total_latency_ms >= base.min(timeout));
                prop_assert!(
                    out.total_latency_ms <= attempts_allowed * timeout.max(base + jitter),
                    "latency {} over bound",
                    out.total_latency_ms
                );
            }
            Err((err, burned)) => {
                // Failures only ever burn up to attempts * timeout.
                prop_assert!(burned <= attempts_allowed * timeout);
                let retryable = matches!(
                    err,
                    ServiceError::TransportFailure { .. } | ServiceError::Timeout { .. }
                );
                prop_assert!(retryable, "unexpected error kind");
            }
        }
    }

    /// With zero failure rate and a generous timeout, the first
    /// attempt always succeeds and latency is within the model range.
    #[test]
    fn reliable_service_one_attempt(base in 1u32..100, jitter in 0u32..50, seed in 0u64..100) {
        let mut t = SimulatedTransport::new(seed);
        t.register(
            "svc",
            Box::new(Echo),
            LatencyModel { base_ms: base, jitter_ms: jitter, failure_rate: 0.0 },
        );
        let client = ServiceClient::with_policy(
            &t,
            CallPolicy { timeout_ms: base + jitter + 1, retries: 3, ..CallPolicy::default() },
        );
        let out = client
            .call("svc", &ServiceRequest::get("/echo", &[("q", "x")]))
            .expect("reliable service");
        prop_assert_eq!(out.attempts, 1);
        prop_assert!((base..=base + jitter).contains(&out.total_latency_ms));
    }

    /// Transport determinism: the same seed yields the same latency
    /// sequence regardless of when the transport was built.
    #[test]
    fn transport_deterministic(seed in 0u64..5000) {
        let run = || {
            let mut t = SimulatedTransport::new(seed);
            t.register("p", Box::new(PricingService), LatencyModel::default());
            let c = ServiceClient::new(&t);
            (0..6)
                .map(|i| {
                    c.call("p", &ServiceRequest::get("/price", &[("item", &format!("g{i}"))]))
                        .map(|o| o.total_latency_ms)
                        .map_err(|(e, _)| e.to_string())
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
