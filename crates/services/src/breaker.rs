//! Per-endpoint circuit breakers on the virtual clock.
//!
//! A down endpoint must fail *fast*: without a breaker, an outage
//! burns `timeout × attempts` virtual ms on every one of a fan-out's
//! N fetches; with one, the first few failures trip the circuit and
//! every subsequent fetch is rejected in ~0 virtual ms until a
//! cool-down passes. The classic three-state machine:
//!
//! ```text
//!        failures ≥ threshold                cool_down elapses
//! Closed ────────────────────▶ Open ────────────────────▶ HalfOpen
//!   ▲                            ▲                            │
//!   │  probe successes ≥ quota   │        probe fails         │
//!   └────────────────────────────┴────────────────────────────┘
//! ```
//!
//! All transitions are keyed on the *virtual* clock — no wall time —
//! so breaker behaviour is exactly reproducible in the chaos suite.
//! The registry shards its endpoint map behind independent mutexes,
//! matching the platform's lock-sharded serving state: fetches for
//! unrelated endpoints never contend.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Number of independently locked shards in a [`BreakerRegistry`].
const SHARDS: usize = 8;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Virtual ms an opened circuit rejects calls before admitting
    /// half-open probes.
    pub open_ms: u64,
    /// Probe successes required to close a half-open circuit.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_ms: 30_000,
            half_open_successes: 2,
        }
    }
}

impl BreakerConfig {
    /// A registry that never trips (the naive-client baseline in the
    /// E-resilience experiment).
    pub fn disabled() -> Self {
        BreakerConfig {
            failure_threshold: u32::MAX,
            ..BreakerConfig::default()
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls are rejected fast.
    Open,
    /// A limited number of probe calls test recovery.
    HalfOpen,
}

/// Admission decision for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed with the call.
    Allow,
    /// Reject without calling: the circuit is open.
    FastFail {
        /// Virtual ms until probes will be admitted.
        retry_after_ms: u64,
    },
}

#[derive(Debug, Clone, Copy)]
enum Core {
    Closed { consecutive_failures: u32 },
    Open { opened_at_ms: u64 },
    HalfOpen { probe_successes: u32 },
}

/// Sharded per-endpoint breaker registry.
pub struct BreakerRegistry {
    config: BreakerConfig,
    shards: Vec<Mutex<HashMap<String, Core>>>,
}

impl std::fmt::Debug for BreakerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BreakerRegistry")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

fn shard_of(endpoint: &str) -> usize {
    // FNV-1a; stable across runs (unlike `DefaultHasher` seeds).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in endpoint.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

impl BreakerRegistry {
    /// Empty registry with the given tuning.
    pub fn new(config: BreakerConfig) -> BreakerRegistry {
        BreakerRegistry {
            config,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Should a call to `endpoint` proceed at virtual time `now_ms`?
    /// An open circuit whose cool-down has elapsed moves to half-open
    /// and admits the call as a probe.
    pub fn admit(&self, endpoint: &str, now_ms: u64) -> Admission {
        let mut shard = self.shards[shard_of(endpoint)].lock();
        let core = shard.entry(endpoint.to_string()).or_insert(Core::Closed {
            consecutive_failures: 0,
        });
        match *core {
            Core::Closed { .. } | Core::HalfOpen { .. } => Admission::Allow,
            Core::Open { opened_at_ms } => {
                let reopens_at = opened_at_ms + self.config.open_ms;
                if now_ms >= reopens_at {
                    *core = Core::HalfOpen { probe_successes: 0 };
                    Admission::Allow
                } else {
                    Admission::FastFail {
                        retry_after_ms: reopens_at - now_ms,
                    }
                }
            }
        }
    }

    /// Record the result of an admitted call finishing at `now_ms`.
    pub fn record(&self, endpoint: &str, now_ms: u64, success: bool) {
        let mut shard = self.shards[shard_of(endpoint)].lock();
        let core = shard.entry(endpoint.to_string()).or_insert(Core::Closed {
            consecutive_failures: 0,
        });
        *core = match (*core, success) {
            (Core::Closed { .. }, true) => Core::Closed {
                consecutive_failures: 0,
            },
            (
                Core::Closed {
                    consecutive_failures,
                },
                false,
            ) => {
                let failures = consecutive_failures + 1;
                if failures >= self.config.failure_threshold {
                    Core::Open {
                        opened_at_ms: now_ms,
                    }
                } else {
                    Core::Closed {
                        consecutive_failures: failures,
                    }
                }
            }
            (Core::HalfOpen { probe_successes }, true) => {
                let successes = probe_successes + 1;
                if successes >= self.config.half_open_successes {
                    Core::Closed {
                        consecutive_failures: 0,
                    }
                } else {
                    Core::HalfOpen {
                        probe_successes: successes,
                    }
                }
            }
            (Core::HalfOpen { .. }, false) => Core::Open {
                opened_at_ms: now_ms,
            },
            // Results may arrive for a circuit that tripped open while
            // the call was in flight; they don't move an open circuit.
            (open @ Core::Open { .. }, _) => open,
        };
    }

    /// Observe the state of `endpoint` at `now_ms` without mutating it
    /// (an open circuit past its cool-down reports [`BreakerState::HalfOpen`]).
    pub fn state(&self, endpoint: &str, now_ms: u64) -> BreakerState {
        let shard = self.shards[shard_of(endpoint)].lock();
        match shard.get(endpoint) {
            None | Some(Core::Closed { .. }) => BreakerState::Closed,
            Some(Core::HalfOpen { .. }) => BreakerState::HalfOpen,
            Some(Core::Open { opened_at_ms }) => {
                if now_ms >= opened_at_ms + self.config.open_ms {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
        }
    }

    /// Forget all endpoint state (admin reset).
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> BreakerRegistry {
        BreakerRegistry::new(BreakerConfig {
            failure_threshold: 3,
            open_ms: 1_000,
            half_open_successes: 2,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let r = registry();
        r.record("svc", 10, false);
        r.record("svc", 20, false);
        assert_eq!(r.state("svc", 20), BreakerState::Closed);
        r.record("svc", 30, false);
        assert_eq!(r.state("svc", 30), BreakerState::Open);
        assert_eq!(
            r.admit("svc", 40),
            Admission::FastFail {
                retry_after_ms: 990
            }
        );
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let r = registry();
        r.record("svc", 0, false);
        r.record("svc", 1, false);
        r.record("svc", 2, true);
        r.record("svc", 3, false);
        r.record("svc", 4, false);
        assert_eq!(r.state("svc", 4), BreakerState::Closed);
    }

    #[test]
    fn full_cycle_closed_open_halfopen_closed() {
        let r = registry();
        for t in 0..3 {
            r.record("svc", t, false);
        }
        assert_eq!(r.state("svc", 2), BreakerState::Open);
        // Cool-down not elapsed: rejected.
        assert!(matches!(r.admit("svc", 500), Admission::FastFail { .. }));
        // Cool-down elapsed: probe admitted, state is half-open.
        assert_eq!(r.admit("svc", 1_002), Admission::Allow);
        assert_eq!(r.state("svc", 1_002), BreakerState::HalfOpen);
        // One probe success is not enough (quota 2)...
        r.record("svc", 1_010, true);
        assert_eq!(r.state("svc", 1_010), BreakerState::HalfOpen);
        // ...the second closes it.
        r.record("svc", 1_020, true);
        assert_eq!(r.state("svc", 1_020), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let r = registry();
        for t in 0..3 {
            r.record("svc", t, false);
        }
        assert_eq!(r.admit("svc", 1_500), Admission::Allow); // probe
        r.record("svc", 1_510, false);
        assert_eq!(r.state("svc", 1_510), BreakerState::Open);
        assert_eq!(
            r.admit("svc", 1_600),
            Admission::FastFail {
                retry_after_ms: 910
            }
        );
    }

    #[test]
    fn endpoints_are_independent() {
        let r = registry();
        for t in 0..3 {
            r.record("down", t, false);
        }
        assert_eq!(r.state("down", 3), BreakerState::Open);
        assert_eq!(r.state("up", 3), BreakerState::Closed);
        assert_eq!(r.admit("up", 3), Admission::Allow);
    }

    #[test]
    fn disabled_config_never_trips() {
        let r = BreakerRegistry::new(BreakerConfig::disabled());
        for t in 0..10_000u64 {
            r.record("svc", t, false);
        }
        assert_eq!(r.state("svc", 10_000), BreakerState::Closed);
    }

    #[test]
    fn reset_forgets_state() {
        let r = registry();
        for t in 0..3 {
            r.record("svc", t, false);
        }
        r.reset();
        assert_eq!(r.state("svc", 3), BreakerState::Closed);
    }
}
