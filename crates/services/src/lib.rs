//! # symphony-services
//!
//! SOAP/REST web-service simulation substrate (paper §II-A: *"Symphony
//! also supports dynamic data accessed through SOAP and REST-based web
//! services"*). Services run behind a seeded virtual-clock transport —
//! latency, jitter, failures, and timeouts are all simulated
//! deterministically and *accounted in virtual milliseconds*, never
//! slept.
//!
//! * [`message`] — protocol-tagged requests, record-set responses.
//! * [`service`] — the [`Service`] trait and self-descriptions.
//! * [`transport`] — endpoint registry + latency/failure model.
//! * [`client`] — timeout/retry/backoff/hedging policy wrapper.
//! * [`breaker`] — per-endpoint circuit breakers on the virtual clock.
//! * [`fault`] — deterministic fault injection scheduled in virtual time.
//! * [`builtin`] — the pricing / in-stock / blurb services the paper's
//!   GamerQueen scenario plugs in.
//!
//! ## Quick example
//!
//! ```
//! use symphony_services::builtin::PricingService;
//! use symphony_services::client::ServiceClient;
//! use symphony_services::message::ServiceRequest;
//! use symphony_services::transport::{LatencyModel, SimulatedTransport};
//!
//! let mut transport = SimulatedTransport::new(42);
//! transport.register("pricing", Box::new(PricingService), LatencyModel::fast());
//! let client = ServiceClient::new(&transport);
//! let out = client
//!     .call("pricing", &ServiceRequest::get("/price", &[("item", "Galactic Raiders")]))
//!     .unwrap();
//! assert_eq!(out.response.first_field("currency"), Some("USD"));
//! ```

#![warn(missing_docs)]

pub mod breaker;
pub mod builtin;
pub mod client;
pub mod fault;
pub mod message;
pub mod rpc;
pub mod service;
pub mod transport;

pub use breaker::{Admission, BreakerConfig, BreakerRegistry, BreakerState};
pub use builtin::{InventoryService, PricingService, ReviewBlurbService};
pub use client::{CallPolicy, ClientOutcome, ResilienceContext, ServiceClient};
pub use fault::{ActiveFaults, FaultEffect, FaultPlan, FaultWindow};
pub use message::{ServiceRecord, ServiceRequest, ServiceResponse};
pub use service::{OperationDesc, Protocol, Service, ServiceDescription, ServiceFault};
pub use transport::{CallOutcome, LatencyModel, ServiceError, SimulatedTransport};
