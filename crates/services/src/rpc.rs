//! Node RPC framing for inter-shard calls.
//!
//! Shard search responses travel through the same string-keyed
//! [`ServiceResponse`](crate::message::ServiceResponse) records as
//! every other simulated service, but scatter-gather correctness
//! demands *exact* float round-trips: the gather side re-sorts merged
//! candidates by raw BM25 score, and a decimal-formatted f32 that
//! rounds differently on decode would reorder ties and break the
//! bit-identity guarantee. Floats are therefore framed as the
//! fixed-width hex of their IEEE-754 bit pattern — `encode_f32` /
//! `decode_f32` are exact inverses for every value, including
//! infinities and NaN payloads.
//!
//! Endpoint naming for cluster nodes lives here too, so routers,
//! fault plans, and tests derive identical endpoint strings instead
//! of formatting them ad hoc.

/// Frame an `f32` as the 8-hex-digit form of its bit pattern
/// (lossless for every value).
pub fn encode_f32(v: f32) -> String {
    format!("{:08x}", v.to_bits())
}

/// Decode a float framed by [`encode_f32`]. `None` on malformed
/// input (wrong length or non-hex digits).
pub fn decode_f32(s: &str) -> Option<f32> {
    if s.len() != 8 {
        return None;
    }
    u32::from_str_radix(s, 16).ok().map(f32::from_bits)
}

/// Frame a `u64` (page indexes, counts) in decimal.
pub fn encode_u64(v: u64) -> String {
    v.to_string()
}

/// Decode a `u64` framed by [`encode_u64`].
pub fn decode_u64(s: &str) -> Option<u64> {
    s.parse().ok()
}

/// Frame an `i64` (epoch timestamps) in decimal.
pub fn encode_i64(v: i64) -> String {
    v.to_string()
}

/// Decode an `i64` framed by [`encode_i64`].
pub fn decode_i64(s: &str) -> Option<i64> {
    s.parse().ok()
}

/// Transport endpoint name of shard `i`'s primary search node.
pub fn shard_endpoint(shard: usize) -> String {
    format!("shard-{shard}")
}

/// Transport endpoint name of shard `i`'s replica search node.
pub fn replica_endpoint(shard: usize) -> String {
    format!("shard-{shard}-replica")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip_is_exact_for_every_bit_pattern_class() {
        let cases = [
            0.0f32,
            -0.0,
            1.0,
            -1.5,
            f32::MIN_POSITIVE,
            f32::MAX,
            f32::MIN,
            f32::NEG_INFINITY,
            f32::INFINITY,
            1.0e-40, // subnormal
            std::f32::consts::PI,
        ];
        for v in cases {
            let decoded = decode_f32(&encode_f32(v)).expect("roundtrip");
            assert_eq!(v.to_bits(), decoded.to_bits(), "value {v}");
        }
        // NaN payloads survive too (bit equality, not ==).
        let nan = f32::from_bits(0x7fc0_1234);
        assert_eq!(
            decode_f32(&encode_f32(nan)).expect("nan").to_bits(),
            nan.to_bits()
        );
    }

    #[test]
    fn f32_roundtrip_dense_bit_sweep() {
        // A stride through the full u32 space: every decode must give
        // back the exact encoded pattern.
        let mut bits = 0u32;
        while bits < u32::MAX - 65_537 {
            let v = f32::from_bits(bits);
            assert_eq!(decode_f32(&encode_f32(v)).unwrap().to_bits(), bits);
            bits += 65_537;
        }
    }

    #[test]
    fn malformed_floats_are_rejected() {
        assert_eq!(decode_f32(""), None);
        assert_eq!(decode_f32("zz"), None);
        assert_eq!(decode_f32("0123456"), None);
        assert_eq!(decode_f32("012345678"), None);
        assert_eq!(decode_f32("0123456g"), None);
    }

    #[test]
    fn integer_framing_roundtrips() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(decode_u64(&encode_u64(v)), Some(v));
        }
        for v in [i64::MIN, -1, 0, 7, i64::MAX] {
            assert_eq!(decode_i64(&encode_i64(v)), Some(v));
        }
        assert_eq!(decode_u64("-1"), None);
        assert_eq!(decode_i64("x"), None);
    }

    #[test]
    fn endpoint_names_are_stable() {
        assert_eq!(shard_endpoint(0), "shard-0");
        assert_eq!(replica_endpoint(3), "shard-3-replica");
    }
}
