//! Deterministic fault injection scheduled in *virtual time*.
//!
//! A [`FaultPlan`] is a set of per-endpoint windows, each applying one
//! [`FaultEffect`] while the transport's virtual clock is inside the
//! window. Plans compose with the endpoint's [`LatencyModel`]: spikes
//! and ramps add latency on top of the model's draw, bursts raise the
//! failure probability, outages make every call hang until the caller
//! times out. Because windows are expressed in virtual milliseconds
//! and the resilient call path draws latency from a pure hash of
//! `(seed, endpoint, request, now, attempt)`, an injected fault
//! produces *exactly* the same behaviour on every run — the chaos
//! suite asserts degradation down to the millisecond.
//!
//! [`LatencyModel`]: crate::transport::LatencyModel

/// What a fault window does to calls inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEffect {
    /// Hard outage: every call hangs and never completes. The caller's
    /// timeout converts the hang into a charged timeout, so without a
    /// circuit breaker an outage burns `timeout × attempts` per fetch.
    Outage,
    /// Latency spike: a fixed surcharge on every call in the window.
    LatencySpike {
        /// Virtual ms added to each call.
        add_ms: u32,
    },
    /// Fault burst: transport failures at the given probability
    /// (combined with the model's own rate by taking the max).
    FaultBurst {
        /// Probability of a transport failure inside the window.
        failure_rate: f64,
    },
    /// Slow-ramp degradation: added latency grows linearly from 0 at
    /// the window start to `peak_add_ms` at the window end.
    SlowRamp {
        /// Added virtual ms reached at the end of the window.
        peak_add_ms: u32,
    },
}

/// One scheduled fault: an effect applied to an endpoint inside
/// `[from_ms, until_ms)` of virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// Endpoint the fault applies to.
    pub endpoint: String,
    /// Window start (inclusive), virtual ms.
    pub from_ms: u64,
    /// Window end (exclusive), virtual ms.
    pub until_ms: u64,
    /// The effect while inside the window.
    pub effect: FaultEffect,
}

impl FaultWindow {
    fn active(&self, endpoint: &str, now_ms: u64) -> bool {
        self.endpoint == endpoint && (self.from_ms..self.until_ms).contains(&now_ms)
    }
}

/// The composed effect of every window active for one call.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ActiveFaults {
    /// At least one outage window is active.
    pub outage: bool,
    /// Total added latency from spikes and ramps.
    pub add_ms: u32,
    /// Strongest burst failure rate (0.0 when none).
    pub failure_rate: f64,
}

/// A deterministic schedule of faults in virtual time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults — the transport behaves per its
    /// latency models alone).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule a hard outage of `endpoint` for `[from_ms, until_ms)`.
    pub fn outage(mut self, endpoint: &str, from_ms: u64, until_ms: u64) -> FaultPlan {
        self.windows.push(FaultWindow {
            endpoint: endpoint.to_string(),
            from_ms,
            until_ms,
            effect: FaultEffect::Outage,
        });
        self
    }

    /// Schedule a latency spike of `add_ms` on `endpoint`.
    pub fn latency_spike(
        mut self,
        endpoint: &str,
        from_ms: u64,
        until_ms: u64,
        add_ms: u32,
    ) -> FaultPlan {
        self.windows.push(FaultWindow {
            endpoint: endpoint.to_string(),
            from_ms,
            until_ms,
            effect: FaultEffect::LatencySpike { add_ms },
        });
        self
    }

    /// Schedule a burst of transport failures on `endpoint`.
    pub fn fault_burst(
        mut self,
        endpoint: &str,
        from_ms: u64,
        until_ms: u64,
        failure_rate: f64,
    ) -> FaultPlan {
        self.windows.push(FaultWindow {
            endpoint: endpoint.to_string(),
            from_ms,
            until_ms,
            effect: FaultEffect::FaultBurst { failure_rate },
        });
        self
    }

    /// Schedule a slow-ramp degradation on `endpoint`: added latency
    /// climbs linearly to `peak_add_ms` across the window.
    pub fn slow_ramp(
        mut self,
        endpoint: &str,
        from_ms: u64,
        until_ms: u64,
        peak_add_ms: u32,
    ) -> FaultPlan {
        self.windows.push(FaultWindow {
            endpoint: endpoint.to_string(),
            from_ms,
            until_ms,
            effect: FaultEffect::SlowRamp { peak_add_ms },
        });
        self
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// True when no window ever fires.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Compose every window active for `endpoint` at `now_ms`.
    pub fn active(&self, endpoint: &str, now_ms: u64) -> ActiveFaults {
        let mut out = ActiveFaults::default();
        for w in self.windows.iter().filter(|w| w.active(endpoint, now_ms)) {
            match w.effect {
                FaultEffect::Outage => out.outage = true,
                FaultEffect::LatencySpike { add_ms } => {
                    out.add_ms = out.add_ms.saturating_add(add_ms)
                }
                FaultEffect::FaultBurst { failure_rate } => {
                    out.failure_rate = out.failure_rate.max(failure_rate)
                }
                FaultEffect::SlowRamp { peak_add_ms } => {
                    let span = (w.until_ms - w.from_ms).max(1);
                    let into = now_ms - w.from_ms;
                    let add = (peak_add_ms as u64 * into / span) as u32;
                    out.add_ms = out.add_ms.saturating_add(add);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open_and_per_endpoint() {
        let plan = FaultPlan::new().outage("a", 100, 200);
        assert!(!plan.active("a", 99).outage);
        assert!(plan.active("a", 100).outage);
        assert!(plan.active("a", 199).outage);
        assert!(!plan.active("a", 200).outage);
        assert!(!plan.active("b", 150).outage);
    }

    #[test]
    fn effects_compose_across_overlapping_windows() {
        let plan = FaultPlan::new()
            .latency_spike("a", 0, 100, 40)
            .latency_spike("a", 50, 100, 10)
            .fault_burst("a", 0, 100, 0.2)
            .fault_burst("a", 0, 100, 0.6);
        let at_25 = plan.active("a", 25);
        assert_eq!(at_25.add_ms, 40);
        assert_eq!(at_25.failure_rate, 0.6);
        let at_75 = plan.active("a", 75);
        assert_eq!(at_75.add_ms, 50);
    }

    #[test]
    fn slow_ramp_grows_linearly() {
        let plan = FaultPlan::new().slow_ramp("a", 1000, 2000, 300);
        assert_eq!(plan.active("a", 1000).add_ms, 0);
        assert_eq!(plan.active("a", 1500).add_ms, 150);
        assert_eq!(plan.active("a", 1999).add_ms, 299);
        assert_eq!(plan.active("a", 2000).add_ms, 0); // window over
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.active("x", 5), ActiveFaults::default());
    }
}
