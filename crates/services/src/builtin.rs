//! Built-in example services.
//!
//! The GamerQueen example (paper §II-B): *"If Ann had a real-time
//! pricing and in-stock service available, it too could be included as
//! service-based supplemental content."* These are those services:
//! deterministic functions of the queried item name, so scenarios and
//! tests are stable without any stored state.

use crate::message::{ServiceRequest, ServiceResponse};
use crate::service::{OperationDesc, Protocol, Service, ServiceDescription, ServiceFault};

fn item_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.to_lowercase().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn missing_item() -> ServiceFault {
    ServiceFault {
        code: 400,
        message: "missing 'item' parameter".into(),
    }
}

/// Real-time pricing: `/price?item=...` -> `price`, `currency`,
/// `on_sale`.
#[derive(Debug, Default, Clone, Copy)]
pub struct PricingService;

impl Service for PricingService {
    fn describe(&self) -> ServiceDescription {
        ServiceDescription {
            name: "Real-time pricing".into(),
            protocol: Protocol::Rest,
            operations: vec![OperationDesc {
                name: "/price".into(),
                params: vec!["item".into()],
                returns: vec![
                    "item".into(),
                    "price".into(),
                    "currency".into(),
                    "on_sale".into(),
                ],
            }],
        }
    }

    fn handle(&self, request: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
        let item = request.param("item").ok_or_else(missing_item)?;
        let h = item_hash(item);
        let cents = 999 + (h % 5000); // $9.99 .. $59.98
        let on_sale = h.is_multiple_of(5);
        let cents = if on_sale { cents * 8 / 10 } else { cents };
        Ok(ServiceResponse::single(&[
            ("item", item),
            ("price", &format!("{}.{:02}", cents / 100, cents % 100)),
            ("currency", "USD"),
            ("on_sale", if on_sale { "true" } else { "false" }),
        ]))
    }
}

/// In-stock inventory: `/stock?item=...` -> `in_stock`, `quantity`,
/// `warehouse`.
#[derive(Debug, Default, Clone, Copy)]
pub struct InventoryService;

impl Service for InventoryService {
    fn describe(&self) -> ServiceDescription {
        ServiceDescription {
            name: "In-stock inventory".into(),
            protocol: Protocol::Soap,
            operations: vec![OperationDesc {
                name: "CheckStock".into(),
                params: vec!["item".into()],
                returns: vec![
                    "item".into(),
                    "in_stock".into(),
                    "quantity".into(),
                    "warehouse".into(),
                ],
            }],
        }
    }

    fn handle(&self, request: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
        let item = request.param("item").ok_or_else(missing_item)?;
        let h = item_hash(item);
        let quantity = h % 25;
        let warehouse = ["north", "south", "east"][(h >> 8) as usize % 3];
        Ok(ServiceResponse::single(&[
            ("item", item),
            ("in_stock", if quantity > 0 { "true" } else { "false" }),
            ("quantity", &quantity.to_string()),
            ("warehouse", warehouse),
        ]))
    }
}

/// Editorial blurbs: `/review?item=...` -> `rating`, `blurb`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReviewBlurbService;

const BLURBS: [&str; 5] = [
    "an instant classic",
    "surprisingly deep",
    "solid but unspectacular",
    "fans will enjoy it",
    "a bold experiment",
];

impl Service for ReviewBlurbService {
    fn describe(&self) -> ServiceDescription {
        ServiceDescription {
            name: "Editorial blurbs".into(),
            protocol: Protocol::Rest,
            operations: vec![OperationDesc {
                name: "/review".into(),
                params: vec!["item".into()],
                returns: vec!["item".into(), "rating".into(), "blurb".into()],
            }],
        }
    }

    fn handle(&self, request: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
        let item = request.param("item").ok_or_else(missing_item)?;
        let h = item_hash(item);
        let rating = 1 + (h % 5);
        Ok(ServiceResponse::single(&[
            ("item", item),
            ("rating", &rating.to_string()),
            ("blurb", BLURBS[(h >> 16) as usize % BLURBS.len()]),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing_is_deterministic_and_well_formed() {
        let s = PricingService;
        let req = ServiceRequest::get("/price", &[("item", "Galactic Raiders")]);
        let a = s.handle(&req).unwrap();
        let b = s.handle(&req).unwrap();
        assert_eq!(a, b);
        let price: f64 = a.first_field("price").unwrap().parse().unwrap();
        assert!((5.0..60.0).contains(&price), "price = {price}");
        assert_eq!(a.first_field("currency"), Some("USD"));
    }

    #[test]
    fn different_items_price_differently() {
        let s = PricingService;
        let a = s
            .handle(&ServiceRequest::get("/price", &[("item", "A")]))
            .unwrap();
        let b = s
            .handle(&ServiceRequest::get("/price", &[("item", "B")]))
            .unwrap();
        assert_ne!(a.first_field("price"), b.first_field("price"));
    }

    #[test]
    fn missing_item_faults() {
        for svc in [
            Box::new(PricingService) as Box<dyn Service>,
            Box::new(InventoryService),
            Box::new(ReviewBlurbService),
        ] {
            let err = svc.handle(&ServiceRequest::get("/x", &[])).unwrap_err();
            assert_eq!(err.code, 400);
        }
    }

    #[test]
    fn inventory_quantity_consistent_with_flag() {
        let s = InventoryService;
        for item in [
            "Galactic Raiders",
            "Farm Story",
            "Laser Golf",
            "Puzzle Palace",
        ] {
            let r = s
                .handle(&ServiceRequest::soap("CheckStock", &[("item", item)]))
                .unwrap();
            let q: u64 = r.first_field("quantity").unwrap().parse().unwrap();
            let flag = r.first_field("in_stock").unwrap();
            assert_eq!(flag == "true", q > 0, "{item}");
        }
    }

    #[test]
    fn blurbs_rating_in_range() {
        let s = ReviewBlurbService;
        let r = s
            .handle(&ServiceRequest::get("/review", &[("item", "Farm Story")]))
            .unwrap();
        let rating: u32 = r.first_field("rating").unwrap().parse().unwrap();
        assert!((1..=5).contains(&rating));
        assert!(!r.first_field("blurb").unwrap().is_empty());
    }

    #[test]
    fn descriptions_list_operations() {
        assert_eq!(PricingService.describe().operations[0].name, "/price");
        assert_eq!(InventoryService.describe().protocol, Protocol::Soap);
        assert_eq!(ReviewBlurbService.describe().operations.len(), 1);
    }
}
