//! Simulated transport: the registry of endpoints plus a seeded
//! latency/failure model on a *virtual clock*.
//!
//! Nothing sleeps. A call returns the response together with the
//! virtual milliseconds it "took"; the platform runtime accounts those
//! into its execution traces (Fig. 2 timings) and its parallel fan-out
//! math (`total = max(...)` instead of `sum(...)`). Determinism comes
//! from a per-transport seeded RNG.

use crate::message::{ServiceRequest, ServiceResponse};
use crate::service::{Service, ServiceDescription, ServiceFault};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Latency/failure behaviour of one endpoint.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Minimum latency in virtual ms.
    pub base_ms: u32,
    /// Uniform jitter added on top.
    pub jitter_ms: u32,
    /// Probability of a transport-level failure.
    pub failure_rate: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base_ms: 40,
            jitter_ms: 60,
            failure_rate: 0.0,
        }
    }
}

impl LatencyModel {
    /// A fast, reliable local service.
    pub fn fast() -> Self {
        LatencyModel {
            base_ms: 5,
            jitter_ms: 5,
            failure_rate: 0.0,
        }
    }

    /// A slow, flaky remote service.
    pub fn flaky(failure_rate: f64) -> Self {
        LatencyModel {
            base_ms: 80,
            jitter_ms: 160,
            failure_rate,
        }
    }
}

/// Errors crossing the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No service registered at the endpoint.
    UnknownEndpoint(String),
    /// The simulated network dropped the call after `elapsed_ms`.
    TransportFailure {
        /// Virtual time burned by the failed attempt.
        elapsed_ms: u32,
    },
    /// The call exceeded the caller's timeout.
    Timeout {
        /// The timeout that was hit.
        timeout_ms: u32,
    },
    /// The service itself returned a fault.
    Fault(ServiceFault),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownEndpoint(e) => write!(f, "unknown endpoint: {e}"),
            ServiceError::TransportFailure { elapsed_ms } => {
                write!(f, "transport failure after {elapsed_ms}ms")
            }
            ServiceError::Timeout { timeout_ms } => write!(f, "timed out at {timeout_ms}ms"),
            ServiceError::Fault(fault) => write!(f, "{fault}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Successful call outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    /// The response.
    pub response: ServiceResponse,
    /// Virtual latency of this call.
    pub latency_ms: u32,
}

struct Endpoint {
    service: Box<dyn Service>,
    latency: LatencyModel,
}

/// The endpoint registry + simulated network.
pub struct SimulatedTransport {
    endpoints: BTreeMap<String, Endpoint>,
    rng: Mutex<StdRng>,
}

impl std::fmt::Debug for SimulatedTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedTransport")
            .field("endpoints", &self.endpoints.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl SimulatedTransport {
    /// Empty transport with a deterministic RNG seed.
    pub fn new(seed: u64) -> SimulatedTransport {
        SimulatedTransport {
            endpoints: BTreeMap::new(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Register a service at `endpoint` with a latency model.
    pub fn register(&mut self, endpoint: &str, service: Box<dyn Service>, latency: LatencyModel) {
        self.endpoints
            .insert(endpoint.to_string(), Endpoint { service, latency });
    }

    /// Registered endpoints in sorted order.
    pub fn endpoints(&self) -> Vec<&str> {
        self.endpoints.keys().map(String::as_str).collect()
    }

    /// Describe the service behind `endpoint`.
    pub fn describe(&self, endpoint: &str) -> Option<ServiceDescription> {
        self.endpoints.get(endpoint).map(|e| e.service.describe())
    }

    /// Make one call. Returns the outcome with virtual latency, or an
    /// error (which still reports the virtual time burned, so callers
    /// can account for it).
    pub fn call(
        &self,
        endpoint: &str,
        request: &ServiceRequest,
    ) -> Result<CallOutcome, ServiceError> {
        let ep = self
            .endpoints
            .get(endpoint)
            .ok_or_else(|| ServiceError::UnknownEndpoint(endpoint.to_string()))?;
        let (latency_ms, failed) = {
            let mut rng = self.rng.lock();
            let jitter = if ep.latency.jitter_ms > 0 {
                rng.gen_range(0..=ep.latency.jitter_ms)
            } else {
                0
            };
            let failed =
                ep.latency.failure_rate > 0.0 && rng.gen_bool(ep.latency.failure_rate.min(1.0));
            (ep.latency.base_ms + jitter, failed)
        };
        if failed {
            return Err(ServiceError::TransportFailure {
                elapsed_ms: latency_ms,
            });
        }
        let response = ep.service.handle(request).map_err(ServiceError::Fault)?;
        Ok(CallOutcome {
            response,
            latency_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{OperationDesc, Protocol};

    struct Fixed;
    impl Service for Fixed {
        fn describe(&self) -> ServiceDescription {
            ServiceDescription {
                name: "Fixed".into(),
                protocol: Protocol::Rest,
                operations: vec![OperationDesc {
                    name: "/v".into(),
                    params: vec![],
                    returns: vec!["v".into()],
                }],
            }
        }
        fn handle(&self, _request: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
            Ok(ServiceResponse::single(&[("v", "1")]))
        }
    }

    fn transport(failure_rate: f64) -> SimulatedTransport {
        let mut t = SimulatedTransport::new(9);
        t.register(
            "svc",
            Box::new(Fixed),
            LatencyModel {
                base_ms: 10,
                jitter_ms: 20,
                failure_rate,
            },
        );
        t
    }

    #[test]
    fn call_returns_latency_in_model_range() {
        let t = transport(0.0);
        for _ in 0..50 {
            let out = t.call("svc", &ServiceRequest::get("/v", &[])).unwrap();
            assert!((10..=30).contains(&out.latency_ms), "{}", out.latency_ms);
        }
    }

    #[test]
    fn unknown_endpoint() {
        let t = transport(0.0);
        assert_eq!(
            t.call("nope", &ServiceRequest::get("/v", &[])).unwrap_err(),
            ServiceError::UnknownEndpoint("nope".into())
        );
    }

    #[test]
    fn failures_happen_at_configured_rate() {
        let t = transport(0.5);
        let mut failures = 0;
        for _ in 0..200 {
            if t.call("svc", &ServiceRequest::get("/v", &[])).is_err() {
                failures += 1;
            }
        }
        assert!((60..=140).contains(&failures), "failures = {failures}");
    }

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut t = SimulatedTransport::new(seed);
            t.register("svc", Box::new(Fixed), LatencyModel::default());
            (0..10)
                .map(|_| {
                    t.call("svc", &ServiceRequest::get("/v", &[]))
                        .map(|o| o.latency_ms)
                        .unwrap_or(0)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(5), seq(5));
        assert_ne!(seq(5), seq(6));
    }

    #[test]
    fn describe_endpoint() {
        let t = transport(0.0);
        assert_eq!(t.describe("svc").unwrap().name, "Fixed");
        assert!(t.describe("nope").is_none());
        assert_eq!(t.endpoints(), vec!["svc"]);
    }

    #[test]
    fn error_display() {
        assert!(ServiceError::Timeout { timeout_ms: 100 }
            .to_string()
            .contains("100"));
        assert!(ServiceError::TransportFailure { elapsed_ms: 7 }
            .to_string()
            .contains("7"));
    }
}
