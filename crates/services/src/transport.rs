//! Simulated transport: the registry of endpoints plus a seeded
//! latency/failure model on a *virtual clock*.
//!
//! Nothing sleeps. A call returns the response together with the
//! virtual milliseconds it "took"; the platform runtime accounts those
//! into its execution traces (Fig. 2 timings) and its parallel fan-out
//! math (`total = max(...)` instead of `sum(...)`). Determinism comes
//! from a per-transport seeded RNG.

use crate::fault::FaultPlan;
use crate::message::{ServiceRequest, ServiceResponse};
use crate::service::{Service, ServiceDescription, ServiceFault};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Latency/failure behaviour of one endpoint.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Minimum latency in virtual ms.
    pub base_ms: u32,
    /// Uniform jitter added on top.
    pub jitter_ms: u32,
    /// Probability of a transport-level failure.
    pub failure_rate: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            base_ms: 40,
            jitter_ms: 60,
            failure_rate: 0.0,
        }
    }
}

impl LatencyModel {
    /// A fast, reliable local service.
    pub fn fast() -> Self {
        LatencyModel {
            base_ms: 5,
            jitter_ms: 5,
            failure_rate: 0.0,
        }
    }

    /// A slow, flaky remote service.
    pub fn flaky(failure_rate: f64) -> Self {
        LatencyModel {
            base_ms: 80,
            jitter_ms: 160,
            failure_rate,
        }
    }
}

/// Errors crossing the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No service registered at the endpoint.
    UnknownEndpoint(String),
    /// The simulated network dropped the call after `elapsed_ms`.
    TransportFailure {
        /// Virtual time burned by the failed attempt.
        elapsed_ms: u32,
    },
    /// The call exceeded the caller's timeout.
    Timeout {
        /// The timeout that was hit.
        timeout_ms: u32,
    },
    /// The service itself returned a fault.
    Fault(ServiceFault),
    /// The endpoint's circuit breaker is open: rejected without a
    /// network attempt (~0 virtual ms burned).
    CircuitOpen {
        /// Virtual ms until half-open probes will be admitted.
        retry_after_ms: u64,
    },
    /// The caller's deadline budget was exhausted before (or while)
    /// attempting the call.
    DeadlineCut {
        /// The budget that was exhausted.
        budget_ms: u32,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownEndpoint(e) => write!(f, "unknown endpoint: {e}"),
            ServiceError::TransportFailure { elapsed_ms } => {
                write!(f, "transport failure after {elapsed_ms}ms")
            }
            ServiceError::Timeout { timeout_ms } => write!(f, "timed out at {timeout_ms}ms"),
            ServiceError::Fault(fault) => write!(f, "{fault}"),
            ServiceError::CircuitOpen { retry_after_ms } => {
                write!(f, "circuit open: fast-fail, retry in {retry_after_ms}ms")
            }
            ServiceError::DeadlineCut { budget_ms } => {
                write!(f, "deadline cut: budget of {budget_ms}ms exhausted")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Successful call outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    /// The response.
    pub response: ServiceResponse,
    /// Virtual latency of this call.
    pub latency_ms: u32,
}

struct Endpoint {
    service: Box<dyn Service>,
    latency: LatencyModel,
}

/// The endpoint registry + simulated network.
pub struct SimulatedTransport {
    endpoints: BTreeMap<String, Endpoint>,
    seed: u64,
    rng: Mutex<StdRng>,
    faults: FaultPlan,
}

impl std::fmt::Debug for SimulatedTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedTransport")
            .field("endpoints", &self.endpoints.keys().collect::<Vec<_>>())
            .field("seed", &self.seed)
            .field("faults", &self.faults.windows().len())
            .finish()
    }
}

impl SimulatedTransport {
    /// Empty transport with a deterministic RNG seed.
    pub fn new(seed: u64) -> SimulatedTransport {
        SimulatedTransport {
            endpoints: BTreeMap::new(),
            seed,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            faults: FaultPlan::new(),
        }
    }

    /// Install a fault-injection plan (replacing any previous one).
    /// Faults apply to the virtual-clock call path
    /// ([`SimulatedTransport::call_at`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Register a service at `endpoint` with a latency model.
    pub fn register(&mut self, endpoint: &str, service: Box<dyn Service>, latency: LatencyModel) {
        self.endpoints
            .insert(endpoint.to_string(), Endpoint { service, latency });
    }

    /// Registered endpoints in sorted order.
    pub fn endpoints(&self) -> Vec<&str> {
        self.endpoints.keys().map(String::as_str).collect()
    }

    /// Describe the service behind `endpoint`.
    pub fn describe(&self, endpoint: &str) -> Option<ServiceDescription> {
        self.endpoints.get(endpoint).map(|e| e.service.describe())
    }

    /// Make one call. Returns the outcome with virtual latency, or an
    /// error (which still reports the virtual time burned, so callers
    /// can account for it).
    pub fn call(
        &self,
        endpoint: &str,
        request: &ServiceRequest,
    ) -> Result<CallOutcome, ServiceError> {
        let ep = self
            .endpoints
            .get(endpoint)
            .ok_or_else(|| ServiceError::UnknownEndpoint(endpoint.to_string()))?;
        let (latency_ms, failed) = {
            let mut rng = self.rng.lock();
            let jitter = if ep.latency.jitter_ms > 0 {
                rng.gen_range(0..=ep.latency.jitter_ms)
            } else {
                0
            };
            let failed =
                ep.latency.failure_rate > 0.0 && rng.gen_bool(ep.latency.failure_rate.min(1.0));
            (ep.latency.base_ms + jitter, failed)
        };
        if failed {
            return Err(ServiceError::TransportFailure {
                elapsed_ms: latency_ms,
            });
        }
        let response = ep.service.handle(request).map_err(ServiceError::Fault)?;
        Ok(CallOutcome {
            response,
            latency_ms,
        })
    }

    /// Make one call at virtual time `now_ms`, attempt number
    /// `attempt` (0 = first try; retries and hedges use distinct
    /// tags so they draw independent latencies).
    ///
    /// Unlike [`SimulatedTransport::call`], whose draws come from a
    /// shared RNG stream (and therefore depend on the global order of
    /// calls), this path derives latency and failure from a pure hash
    /// of `(seed, endpoint, request, now_ms, attempt)`. Concurrent
    /// fan-out workers get identical outcomes regardless of thread
    /// scheduling — the property the chaos suite's exact assertions
    /// rest on. The installed [`FaultPlan`] composes on top: outages
    /// hang the call (the caller's timeout converts that into a
    /// charged timeout), spikes and ramps add latency, bursts raise
    /// the failure probability.
    pub fn call_at(
        &self,
        endpoint: &str,
        request: &ServiceRequest,
        now_ms: u64,
        attempt: u32,
    ) -> Result<CallOutcome, ServiceError> {
        let ep = self
            .endpoints
            .get(endpoint)
            .ok_or_else(|| ServiceError::UnknownEndpoint(endpoint.to_string()))?;
        let active = self.faults.active(endpoint, now_ms);
        if active.outage {
            // The connection hangs forever; the client charges its
            // timeout. `u32::MAX` marks "never completed".
            return Err(ServiceError::TransportFailure {
                elapsed_ms: u32::MAX,
            });
        }
        let mut h = splitmix64(self.seed ^ 0x53_59_4D_50_48_4F_4E_59); // "SYMPHONY"
        for b in endpoint.bytes() {
            h = splitmix64(h ^ b as u64);
        }
        h = splitmix64(h ^ request_fingerprint(request));
        h = splitmix64(h ^ now_ms);
        h = splitmix64(h ^ attempt as u64);
        let jitter = if ep.latency.jitter_ms > 0 {
            (h % (ep.latency.jitter_ms as u64 + 1)) as u32
        } else {
            0
        };
        let latency_ms = ep
            .latency
            .base_ms
            .saturating_add(jitter)
            .saturating_add(active.add_ms);
        let failure_rate = ep.latency.failure_rate.max(active.failure_rate).min(1.0);
        let failed = failure_rate > 0.0 && {
            let draw = splitmix64(h) as f64 / u64::MAX as f64;
            draw < failure_rate
        };
        if failed {
            return Err(ServiceError::TransportFailure {
                elapsed_ms: latency_ms,
            });
        }
        let response = ep.service.handle(request).map_err(ServiceError::Fault)?;
        Ok(CallOutcome {
            response,
            latency_ms,
        })
    }
}

/// SplitMix64 mixing step: the deterministic "network noise" of the
/// virtual-clock call path.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn request_fingerprint(request: &ServiceRequest) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |s: &str| {
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xFF;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    match request {
        ServiceRequest::Rest(r) => {
            eat(&r.path);
            for (k, v) in &r.params {
                eat(k);
                eat(v);
            }
        }
        ServiceRequest::Soap(s) => {
            eat(&s.operation);
            for (k, v) in &s.args {
                eat(k);
                eat(v);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{OperationDesc, Protocol};

    struct Fixed;
    impl Service for Fixed {
        fn describe(&self) -> ServiceDescription {
            ServiceDescription {
                name: "Fixed".into(),
                protocol: Protocol::Rest,
                operations: vec![OperationDesc {
                    name: "/v".into(),
                    params: vec![],
                    returns: vec!["v".into()],
                }],
            }
        }
        fn handle(&self, _request: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
            Ok(ServiceResponse::single(&[("v", "1")]))
        }
    }

    fn transport(failure_rate: f64) -> SimulatedTransport {
        let mut t = SimulatedTransport::new(9);
        t.register(
            "svc",
            Box::new(Fixed),
            LatencyModel {
                base_ms: 10,
                jitter_ms: 20,
                failure_rate,
            },
        );
        t
    }

    #[test]
    fn call_returns_latency_in_model_range() {
        let t = transport(0.0);
        for _ in 0..50 {
            let out = t.call("svc", &ServiceRequest::get("/v", &[])).unwrap();
            assert!((10..=30).contains(&out.latency_ms), "{}", out.latency_ms);
        }
    }

    #[test]
    fn unknown_endpoint() {
        let t = transport(0.0);
        assert_eq!(
            t.call("nope", &ServiceRequest::get("/v", &[])).unwrap_err(),
            ServiceError::UnknownEndpoint("nope".into())
        );
    }

    #[test]
    fn failures_happen_at_configured_rate() {
        let t = transport(0.5);
        let mut failures = 0;
        for _ in 0..200 {
            if t.call("svc", &ServiceRequest::get("/v", &[])).is_err() {
                failures += 1;
            }
        }
        assert!((60..=140).contains(&failures), "failures = {failures}");
    }

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut t = SimulatedTransport::new(seed);
            t.register("svc", Box::new(Fixed), LatencyModel::default());
            (0..10)
                .map(|_| {
                    t.call("svc", &ServiceRequest::get("/v", &[]))
                        .map(|o| o.latency_ms)
                        .unwrap_or(0)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(5), seq(5));
        assert_ne!(seq(5), seq(6));
    }

    #[test]
    fn describe_endpoint() {
        let t = transport(0.0);
        assert_eq!(t.describe("svc").unwrap().name, "Fixed");
        assert!(t.describe("nope").is_none());
        assert_eq!(t.endpoints(), vec!["svc"]);
    }

    #[test]
    fn error_display() {
        assert!(ServiceError::Timeout { timeout_ms: 100 }
            .to_string()
            .contains("100"));
        assert!(ServiceError::TransportFailure { elapsed_ms: 7 }
            .to_string()
            .contains("7"));
        assert!(ServiceError::CircuitOpen {
            retry_after_ms: 250
        }
        .to_string()
        .contains("circuit open"));
        assert!(ServiceError::DeadlineCut { budget_ms: 40 }
            .to_string()
            .contains("deadline cut"));
    }

    #[test]
    fn call_at_is_a_pure_function_of_its_inputs() {
        let t = transport(0.0);
        let req = ServiceRequest::get("/v", &[]);
        let a = t.call_at("svc", &req, 100, 0).unwrap().latency_ms;
        // Same inputs, same draw — order and repetition don't matter.
        for _ in 0..5 {
            assert_eq!(t.call_at("svc", &req, 100, 0).unwrap().latency_ms, a);
        }
        assert!((10..=30).contains(&a));
        // Different time, attempt, or request can change the draw.
        let over_time: Vec<u32> = (0..50)
            .map(|i| t.call_at("svc", &req, i * 13, 0).unwrap().latency_ms)
            .collect();
        assert!(
            over_time.iter().any(|&l| l != a),
            "draws never varied over time"
        );
        assert!(over_time.iter().all(|l| (10..=30).contains(l)));
    }

    #[test]
    fn call_at_failure_rate_is_respected_across_time() {
        let t = transport(0.5);
        let req = ServiceRequest::get("/v", &[]);
        let failures = (0..200)
            .filter(|&i| t.call_at("svc", &req, i * 7, 0).is_err())
            .count();
        assert!((60..=140).contains(&failures), "failures = {failures}");
    }

    #[test]
    fn outage_window_hangs_calls_only_inside_it() {
        let mut t = transport(0.0);
        t.set_fault_plan(FaultPlan::new().outage("svc", 1_000, 2_000));
        let req = ServiceRequest::get("/v", &[]);
        assert!(t.call_at("svc", &req, 999, 0).is_ok());
        assert_eq!(
            t.call_at("svc", &req, 1_000, 0).unwrap_err(),
            ServiceError::TransportFailure {
                elapsed_ms: u32::MAX
            }
        );
        assert!(t.call_at("svc", &req, 2_000, 0).is_ok());
    }

    #[test]
    fn latency_spike_adds_on_top_of_the_model() {
        let mut t = transport(0.0);
        t.set_fault_plan(FaultPlan::new().latency_spike("svc", 500, 600, 300));
        let req = ServiceRequest::get("/v", &[]);
        let calm = t.call_at("svc", &req, 400, 0).unwrap().latency_ms;
        let spiked = t.call_at("svc", &req, 550, 0).unwrap().latency_ms;
        assert!((10..=30).contains(&calm));
        assert!((310..=330).contains(&spiked), "spiked = {spiked}");
    }

    #[test]
    fn fault_burst_raises_failure_rate_inside_window() {
        let mut t = transport(0.0);
        t.set_fault_plan(FaultPlan::new().fault_burst("svc", 0, 1_000, 1.0));
        let req = ServiceRequest::get("/v", &[]);
        assert!(t.call_at("svc", &req, 500, 0).is_err());
        assert!(t.call_at("svc", &req, 1_500, 0).is_ok());
    }
}
