//! Service client with timeout and retry policy.
//!
//! The platform runtime never calls the transport directly; it goes
//! through a client so per-source timeout/retry behaviour is uniform
//! and the virtual time spent (including failed attempts) is
//! accounted.

use crate::message::{ServiceRequest, ServiceResponse};
use crate::transport::{ServiceError, SimulatedTransport};

/// Retry/timeout policy.
#[derive(Debug, Clone, Copy)]
pub struct CallPolicy {
    /// Per-attempt timeout in virtual ms.
    pub timeout_ms: u32,
    /// Retries after the first attempt (0 = single attempt).
    pub retries: u32,
}

impl Default for CallPolicy {
    fn default() -> Self {
        CallPolicy {
            timeout_ms: 500,
            retries: 1,
        }
    }
}

/// Result of a (possibly retried) call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientOutcome {
    /// Final response.
    pub response: ServiceResponse,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Total virtual time across attempts, failed ones included.
    pub total_latency_ms: u32,
}

/// A thin, policy-carrying client over a transport.
#[derive(Debug, Clone, Copy)]
pub struct ServiceClient<'a> {
    transport: &'a SimulatedTransport,
    policy: CallPolicy,
}

impl<'a> ServiceClient<'a> {
    /// Client with the default policy.
    pub fn new(transport: &'a SimulatedTransport) -> Self {
        ServiceClient {
            transport,
            policy: CallPolicy::default(),
        }
    }

    /// Client with an explicit policy.
    pub fn with_policy(transport: &'a SimulatedTransport, policy: CallPolicy) -> Self {
        ServiceClient { transport, policy }
    }

    /// The active policy.
    pub fn policy(&self) -> CallPolicy {
        self.policy
    }

    /// Call `endpoint`, applying timeout and retries. On error the
    /// virtual time burned is reported through the error variants.
    pub fn call(
        &self,
        endpoint: &str,
        request: &ServiceRequest,
    ) -> Result<ClientOutcome, (ServiceError, u32)> {
        let mut total = 0u32;
        let attempts_allowed = self.policy.retries + 1;
        let mut last_err = None;
        for attempt in 1..=attempts_allowed {
            match self.transport.call(endpoint, request) {
                Ok(outcome) => {
                    if outcome.latency_ms > self.policy.timeout_ms {
                        // The caller hung up at the timeout; the
                        // attempt costs exactly the timeout.
                        total += self.policy.timeout_ms;
                        last_err = Some(ServiceError::Timeout {
                            timeout_ms: self.policy.timeout_ms,
                        });
                        continue;
                    }
                    total += outcome.latency_ms;
                    return Ok(ClientOutcome {
                        response: outcome.response,
                        attempts: attempt,
                        total_latency_ms: total,
                    });
                }
                Err(ServiceError::TransportFailure { elapsed_ms }) => {
                    total += elapsed_ms.min(self.policy.timeout_ms);
                    last_err = Some(ServiceError::TransportFailure { elapsed_ms });
                }
                Err(e @ ServiceError::UnknownEndpoint(_)) | Err(e @ ServiceError::Fault(_)) => {
                    // Not retryable.
                    return Err((e, total));
                }
                Err(e @ ServiceError::Timeout { .. }) => {
                    total += self.policy.timeout_ms;
                    last_err = Some(e);
                }
            }
        }
        Err((last_err.expect("loop ran at least once"), total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ServiceResponse;
    use crate::service::{OperationDesc, Protocol, Service, ServiceDescription, ServiceFault};
    use crate::transport::LatencyModel;

    struct Fixed;
    impl Service for Fixed {
        fn describe(&self) -> ServiceDescription {
            ServiceDescription {
                name: "Fixed".into(),
                protocol: Protocol::Rest,
                operations: vec![OperationDesc {
                    name: "/v".into(),
                    params: vec![],
                    returns: vec!["v".into()],
                }],
            }
        }
        fn handle(&self, req: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
            if req.param("fail").is_some() {
                return Err(ServiceFault {
                    code: 500,
                    message: "boom".into(),
                });
            }
            Ok(ServiceResponse::single(&[("v", "1")]))
        }
    }

    fn transport(latency: LatencyModel) -> SimulatedTransport {
        let mut t = SimulatedTransport::new(3);
        t.register("svc", Box::new(Fixed), latency);
        t
    }

    #[test]
    fn successful_call_single_attempt() {
        let t = transport(LatencyModel::fast());
        let c = ServiceClient::new(&t);
        let out = c.call("svc", &ServiceRequest::get("/v", &[])).unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.response.first_field("v"), Some("1"));
        assert!(out.total_latency_ms <= 10);
    }

    #[test]
    fn retries_recover_from_transport_failures() {
        let t = transport(LatencyModel {
            base_ms: 10,
            jitter_ms: 0,
            failure_rate: 0.5,
        });
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 100,
                retries: 5,
            },
        );
        let mut recovered_with_retry = false;
        for _ in 0..50 {
            if let Ok(out) = c.call("svc", &ServiceRequest::get("/v", &[])) {
                if out.attempts > 1 {
                    // Failed attempts must be charged.
                    assert!(out.total_latency_ms >= out.attempts * 10);
                    recovered_with_retry = true;
                }
            }
        }
        assert!(recovered_with_retry);
    }

    #[test]
    fn timeout_when_latency_exceeds_budget() {
        let t = transport(LatencyModel {
            base_ms: 300,
            jitter_ms: 0,
            failure_rate: 0.0,
        });
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 100,
                retries: 1,
            },
        );
        let (err, burned) = c.call("svc", &ServiceRequest::get("/v", &[])).unwrap_err();
        assert_eq!(err, ServiceError::Timeout { timeout_ms: 100 });
        // Two attempts, each hung up at 100ms.
        assert_eq!(burned, 200);
    }

    #[test]
    fn faults_are_not_retried() {
        let t = transport(LatencyModel::fast());
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 100,
                retries: 5,
            },
        );
        let (err, _) = c
            .call("svc", &ServiceRequest::get("/v", &[("fail", "1")]))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Fault(f) if f.code == 500));
    }

    #[test]
    fn unknown_endpoint_not_retried() {
        let t = transport(LatencyModel::fast());
        let c = ServiceClient::new(&t);
        let (err, burned) = c.call("nope", &ServiceRequest::get("/v", &[])).unwrap_err();
        assert!(matches!(err, ServiceError::UnknownEndpoint(_)));
        assert_eq!(burned, 0);
    }
}
