//! Service client with timeout, retry, backoff, and hedging policy.
//!
//! The platform runtime never calls the transport directly; it goes
//! through a client so per-source timeout/retry behaviour is uniform
//! and the virtual time spent (including failed attempts, backoff
//! waits, and hedged duplicates) is accounted.
//!
//! Two call paths coexist:
//!
//! * [`ServiceClient::call`] — the legacy path over the transport's
//!   shared RNG stream: timeout + flat retries only.
//! * [`ServiceClient::call_resilient`] — the virtual-clock path the
//!   platform runtime uses: deterministic draws keyed on `(now,
//!   attempt)`, exponential backoff with jitter, optional hedged
//!   requests, a deadline budget, and an optional circuit breaker
//!   consulted before the wire is touched.

use crate::breaker::{Admission, BreakerRegistry};
use crate::message::{ServiceRequest, ServiceResponse};
use crate::transport::{splitmix64, ServiceError, SimulatedTransport};

/// Retry/timeout/backoff/hedging policy.
#[derive(Debug, Clone, Copy)]
pub struct CallPolicy {
    /// Per-attempt timeout in virtual ms.
    pub timeout_ms: u32,
    /// Retries after the first attempt (0 = single attempt).
    pub retries: u32,
    /// Base backoff before the first retry, doubled per further retry
    /// (0 = retry immediately, the legacy behaviour). The wait is
    /// charged into `total_latency_ms` — backoff is time the end user
    /// spends waiting, not a free pause.
    pub backoff_base_ms: u32,
    /// Cap on a single backoff wait.
    pub backoff_cap_ms: u32,
    /// Launch a hedged duplicate if an attempt has not completed
    /// after this many virtual ms; the attempt then costs the *min*
    /// of the two completions (parallel semantics). `None` disables
    /// hedging.
    pub hedge_after_ms: Option<u32>,
}

impl Default for CallPolicy {
    fn default() -> Self {
        CallPolicy {
            timeout_ms: 500,
            retries: 1,
            backoff_base_ms: 0,
            backoff_cap_ms: 2_000,
            hedge_after_ms: None,
        }
    }
}

impl CallPolicy {
    /// The production-leaning profile used by resilient sources:
    /// jittered exponential backoff and a hedge at the typical p90.
    pub fn resilient() -> Self {
        CallPolicy {
            timeout_ms: 500,
            retries: 2,
            backoff_base_ms: 25,
            backoff_cap_ms: 2_000,
            hedge_after_ms: Some(150),
        }
    }

    /// Deterministic jittered backoff before retry attempt `attempt`
    /// (2 = first retry), seeded by the virtual time so different
    /// queries spread out instead of retrying in lockstep.
    fn backoff_before_ms(&self, attempt: u32, now_ms: u64) -> u32 {
        if self.backoff_base_ms == 0 || attempt < 2 {
            return 0;
        }
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u32 << (attempt - 2).min(16))
            .min(self.backoff_cap_ms);
        // Full jitter in [exp/2, exp].
        let half = exp / 2;
        let jitter = splitmix64(now_ms ^ (attempt as u64) << 32) % (half as u64 + 1);
        half + jitter as u32
    }
}

/// Everything the resilient call path needs from its caller: the
/// virtual clock, the remaining deadline budget, a cap on retries
/// (the per-query retry budget), and the shared breaker registry.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResilienceContext<'a> {
    /// Virtual time at which the call starts.
    pub now_ms: u64,
    /// Budget in virtual ms for the whole call, all attempts and
    /// backoffs included (`None` = unlimited).
    pub budget_ms: Option<u32>,
    /// Cap on retries, from the per-query retry budget (`None` =
    /// policy decides alone).
    pub max_retries: Option<u32>,
    /// Circuit-breaker registry consulted before calling and fed with
    /// per-attempt results.
    pub breakers: Option<&'a BreakerRegistry>,
}

impl<'a> ResilienceContext<'a> {
    /// Context at a virtual time with no budget, retry cap, or breaker.
    pub fn at(now_ms: u64) -> Self {
        ResilienceContext {
            now_ms,
            ..Default::default()
        }
    }
}

/// Result of a (possibly retried) call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientOutcome {
    /// Final response.
    pub response: ServiceResponse,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Total virtual time across attempts, failed ones included.
    pub total_latency_ms: u32,
}

/// A thin, policy-carrying client over a transport.
#[derive(Debug, Clone, Copy)]
pub struct ServiceClient<'a> {
    transport: &'a SimulatedTransport,
    policy: CallPolicy,
}

impl<'a> ServiceClient<'a> {
    /// Client with the default policy.
    pub fn new(transport: &'a SimulatedTransport) -> Self {
        ServiceClient {
            transport,
            policy: CallPolicy::default(),
        }
    }

    /// Client with an explicit policy.
    pub fn with_policy(transport: &'a SimulatedTransport, policy: CallPolicy) -> Self {
        ServiceClient { transport, policy }
    }

    /// The active policy.
    pub fn policy(&self) -> CallPolicy {
        self.policy
    }

    /// Call `endpoint`, applying timeout and retries. On error the
    /// virtual time burned is reported through the error variants.
    pub fn call(
        &self,
        endpoint: &str,
        request: &ServiceRequest,
    ) -> Result<ClientOutcome, (ServiceError, u32)> {
        let mut total = 0u32;
        let attempts_allowed = self.policy.retries + 1;
        let mut last_err = None;
        for attempt in 1..=attempts_allowed {
            match self.transport.call(endpoint, request) {
                Ok(outcome) => {
                    if outcome.latency_ms > self.policy.timeout_ms {
                        // The caller hung up at the timeout; the
                        // attempt costs exactly the timeout.
                        total += self.policy.timeout_ms;
                        last_err = Some(ServiceError::Timeout {
                            timeout_ms: self.policy.timeout_ms,
                        });
                        continue;
                    }
                    total += outcome.latency_ms;
                    return Ok(ClientOutcome {
                        response: outcome.response,
                        attempts: attempt,
                        total_latency_ms: total,
                    });
                }
                Err(ServiceError::TransportFailure { elapsed_ms }) => {
                    total += elapsed_ms.min(self.policy.timeout_ms);
                    last_err = Some(ServiceError::TransportFailure { elapsed_ms });
                }
                Err(e @ ServiceError::UnknownEndpoint(_)) | Err(e @ ServiceError::Fault(_)) => {
                    // Not retryable.
                    return Err((e, total));
                }
                Err(e @ ServiceError::Timeout { .. }) => {
                    total += self.policy.timeout_ms;
                    last_err = Some(e);
                }
                // The transport never raises these; surface as fatal.
                Err(e @ ServiceError::CircuitOpen { .. })
                | Err(e @ ServiceError::DeadlineCut { .. }) => {
                    return Err((e, total));
                }
            }
        }
        Err((last_err.expect("loop ran at least once"), total))
    }

    /// Call `endpoint` on the virtual clock with the full resilience
    /// stack: circuit breaker, deadline budget, per-attempt timeout,
    /// jittered exponential backoff, and hedged requests.
    ///
    /// Every virtual millisecond the caller ends up waiting — failed
    /// attempts, backoff pauses, the winning side of a hedge — is
    /// charged into the returned total, and never more than the
    /// context's budget.
    pub fn call_resilient(
        &self,
        endpoint: &str,
        request: &ServiceRequest,
        ctx: &ResilienceContext<'_>,
    ) -> Result<ClientOutcome, (ServiceError, u32)> {
        if let Some(breakers) = ctx.breakers {
            if let Admission::FastFail { retry_after_ms } = breakers.admit(endpoint, ctx.now_ms) {
                return Err((ServiceError::CircuitOpen { retry_after_ms }, 0));
            }
        }
        let budget = ctx.budget_ms.unwrap_or(u32::MAX);
        let retries = self.policy.retries.min(ctx.max_retries.unwrap_or(u32::MAX));
        let mut total = 0u32;
        let mut last_err = ServiceError::DeadlineCut { budget_ms: budget };
        for attempt in 1..=retries + 1 {
            // Backoff (charged) before every retry.
            let wait = self
                .policy
                .backoff_before_ms(attempt, ctx.now_ms + total as u64);
            total = total.saturating_add(wait).min(budget);
            let remaining = budget - total;
            let effective_timeout = self.policy.timeout_ms.min(remaining);
            if effective_timeout == 0 {
                last_err = ServiceError::DeadlineCut { budget_ms: budget };
                break;
            }
            let start = ctx.now_ms + total as u64;
            match self.attempt_at(endpoint, request, start, attempt, effective_timeout) {
                AttemptResult::Success { response, cost_ms } => {
                    if let Some(breakers) = ctx.breakers {
                        breakers.record(endpoint, start + cost_ms as u64, true);
                    }
                    return Ok(ClientOutcome {
                        response,
                        attempts: attempt,
                        total_latency_ms: total + cost_ms,
                    });
                }
                AttemptResult::Retryable { err, cost_ms } => {
                    if let Some(breakers) = ctx.breakers {
                        breakers.record(endpoint, start + cost_ms as u64, false);
                    }
                    total += cost_ms;
                    last_err = err;
                }
                AttemptResult::Fatal {
                    err,
                    record_breaker,
                } => {
                    if record_breaker {
                        if let Some(breakers) = ctx.breakers {
                            breakers.record(endpoint, start, false);
                        }
                    }
                    return Err((err, total));
                }
            }
        }
        Err((last_err, total))
    }

    /// One (possibly hedged) attempt starting at virtual time `start`.
    fn attempt_at(
        &self,
        endpoint: &str,
        request: &ServiceRequest,
        start: u64,
        attempt: u32,
        timeout_ms: u32,
    ) -> AttemptResult {
        // Retries and hedges draw independent latencies: tag the
        // primary side of attempt n as 2(n-1), its hedge as 2(n-1)+1.
        let tag = (attempt - 1) * 2;
        let first = match self.transport.call_at(endpoint, request, start, tag) {
            Err(err @ ServiceError::UnknownEndpoint(_)) => {
                return AttemptResult::Fatal {
                    err,
                    record_breaker: false,
                }
            }
            Err(err @ ServiceError::Fault(_)) => {
                return AttemptResult::Fatal {
                    err,
                    record_breaker: true,
                }
            }
            Ok(out) => (out.latency_ms, Some(out.response)),
            Err(ServiceError::TransportFailure { elapsed_ms }) => (elapsed_ms, None),
            // The transport never raises the remaining variants.
            Err(err) => {
                return AttemptResult::Fatal {
                    err,
                    record_breaker: false,
                }
            }
        };
        let first_time = first.0;
        let first_ok = first.1.is_some();
        let mut candidates = vec![first];
        if let Some(hedge_ms) = self.policy.hedge_after_ms {
            let first_done = first_ok && first_time <= hedge_ms;
            if hedge_ms < timeout_ms && !first_done {
                match self
                    .transport
                    .call_at(endpoint, request, start + hedge_ms as u64, tag + 1)
                {
                    Ok(out) => candidates
                        .push((hedge_ms.saturating_add(out.latency_ms), Some(out.response))),
                    Err(ServiceError::TransportFailure { elapsed_ms }) => {
                        candidates.push((hedge_ms.saturating_add(elapsed_ms), None))
                    }
                    // A fault from the hedge is a completion of the
                    // duplicate, not of the attempt; ignore it and let
                    // the primary side decide.
                    Err(_) => {}
                }
            }
        }
        // Earliest success inside the timeout wins (parallel
        // semantics: the caller hangs up on the loser).
        if let Some((t, response)) = candidates
            .iter()
            .filter(|(t, r)| r.is_some() && *t <= timeout_ms)
            .min_by_key(|(t, _)| *t)
            .cloned()
        {
            return AttemptResult::Success {
                response: response.expect("filtered on is_some"),
                cost_ms: t,
            };
        }
        // No success in time. If every side failed within the timeout
        // the caller knows at the latest failure; otherwise it waits
        // out the timeout.
        let latest = candidates.iter().map(|(t, _)| *t).max().unwrap_or(0);
        if candidates.iter().all(|(_, r)| r.is_none()) && latest <= timeout_ms {
            AttemptResult::Retryable {
                err: ServiceError::TransportFailure { elapsed_ms: latest },
                cost_ms: latest,
            }
        } else {
            AttemptResult::Retryable {
                err: ServiceError::Timeout { timeout_ms },
                cost_ms: timeout_ms,
            }
        }
    }
}

enum AttemptResult {
    Success {
        response: ServiceResponse,
        cost_ms: u32,
    },
    Retryable {
        err: ServiceError,
        cost_ms: u32,
    },
    Fatal {
        err: ServiceError,
        record_breaker: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ServiceResponse;
    use crate::service::{OperationDesc, Protocol, Service, ServiceDescription, ServiceFault};
    use crate::transport::LatencyModel;

    struct Fixed;
    impl Service for Fixed {
        fn describe(&self) -> ServiceDescription {
            ServiceDescription {
                name: "Fixed".into(),
                protocol: Protocol::Rest,
                operations: vec![OperationDesc {
                    name: "/v".into(),
                    params: vec![],
                    returns: vec!["v".into()],
                }],
            }
        }
        fn handle(&self, req: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
            if req.param("fail").is_some() {
                return Err(ServiceFault {
                    code: 500,
                    message: "boom".into(),
                });
            }
            Ok(ServiceResponse::single(&[("v", "1")]))
        }
    }

    fn transport(latency: LatencyModel) -> SimulatedTransport {
        let mut t = SimulatedTransport::new(3);
        t.register("svc", Box::new(Fixed), latency);
        t
    }

    #[test]
    fn successful_call_single_attempt() {
        let t = transport(LatencyModel::fast());
        let c = ServiceClient::new(&t);
        let out = c.call("svc", &ServiceRequest::get("/v", &[])).unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.response.first_field("v"), Some("1"));
        assert!(out.total_latency_ms <= 10);
    }

    #[test]
    fn retries_recover_from_transport_failures() {
        let t = transport(LatencyModel {
            base_ms: 10,
            jitter_ms: 0,
            failure_rate: 0.5,
        });
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 100,
                retries: 5,
                ..CallPolicy::default()
            },
        );
        let mut recovered_with_retry = false;
        for _ in 0..50 {
            if let Ok(out) = c.call("svc", &ServiceRequest::get("/v", &[])) {
                if out.attempts > 1 {
                    // Failed attempts must be charged.
                    assert!(out.total_latency_ms >= out.attempts * 10);
                    recovered_with_retry = true;
                }
            }
        }
        assert!(recovered_with_retry);
    }

    #[test]
    fn timeout_when_latency_exceeds_budget() {
        let t = transport(LatencyModel {
            base_ms: 300,
            jitter_ms: 0,
            failure_rate: 0.0,
        });
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 100,
                retries: 1,
                ..CallPolicy::default()
            },
        );
        let (err, burned) = c.call("svc", &ServiceRequest::get("/v", &[])).unwrap_err();
        assert_eq!(err, ServiceError::Timeout { timeout_ms: 100 });
        // Two attempts, each hung up at 100ms.
        assert_eq!(burned, 200);
    }

    #[test]
    fn faults_are_not_retried() {
        let t = transport(LatencyModel::fast());
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 100,
                retries: 5,
                ..CallPolicy::default()
            },
        );
        let (err, _) = c
            .call("svc", &ServiceRequest::get("/v", &[("fail", "1")]))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Fault(f) if f.code == 500));
    }

    #[test]
    fn unknown_endpoint_not_retried() {
        let t = transport(LatencyModel::fast());
        let c = ServiceClient::new(&t);
        let (err, burned) = c.call("nope", &ServiceRequest::get("/v", &[])).unwrap_err();
        assert!(matches!(err, ServiceError::UnknownEndpoint(_)));
        assert_eq!(burned, 0);
    }

    // --- resilient path ---

    use crate::breaker::{BreakerConfig, BreakerRegistry};
    use crate::fault::FaultPlan;

    fn exact(base_ms: u32, failure_rate: f64) -> LatencyModel {
        LatencyModel {
            base_ms,
            jitter_ms: 0,
            failure_rate,
        }
    }

    #[test]
    fn resilient_success_costs_the_drawn_latency() {
        let t = transport(exact(10, 0.0));
        let c = ServiceClient::new(&t);
        let out = c
            .call_resilient(
                "svc",
                &ServiceRequest::get("/v", &[]),
                &ResilienceContext::at(0),
            )
            .unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.total_latency_ms, 10);
        assert_eq!(out.response.first_field("v"), Some("1"));
    }

    #[test]
    fn backoff_waits_are_charged_between_retries() {
        let t = transport(exact(10, 1.0));
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 50,
                retries: 2,
                backoff_base_ms: 100,
                backoff_cap_ms: 1_000,
                hedge_after_ms: None,
            },
        );
        let (err, burned) = c
            .call_resilient(
                "svc",
                &ServiceRequest::get("/v", &[]),
                &ResilienceContext::at(0),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::TransportFailure { .. }));
        // 3 failed attempts at 10ms each, plus jittered waits in
        // [50,100] and [100,200] before the retries.
        assert!((180..=330).contains(&burned), "burned = {burned}");
    }

    #[test]
    fn hedge_does_not_inflate_a_winning_primary() {
        let t = transport(exact(200, 0.0));
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 500,
                retries: 0,
                hedge_after_ms: Some(50),
                ..CallPolicy::default()
            },
        );
        let out = c
            .call_resilient(
                "svc",
                &ServiceRequest::get("/v", &[]),
                &ResilienceContext::at(0),
            )
            .unwrap();
        // Primary completes at 200, hedge would complete at 250: min wins.
        assert_eq!(out.total_latency_ms, 200);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn hedge_wins_when_the_primary_is_spiked() {
        let mut t = SimulatedTransport::new(3);
        t.register("svc", Box::new(Fixed), exact(200, 0.0));
        // Spike covers only the primary's launch instant; the hedge
        // launched at t=50 draws from the calm model.
        t.set_fault_plan(FaultPlan::new().latency_spike("svc", 0, 50, 400));
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 500,
                retries: 0,
                hedge_after_ms: Some(50),
                ..CallPolicy::default()
            },
        );
        let out = c
            .call_resilient(
                "svc",
                &ServiceRequest::get("/v", &[]),
                &ResilienceContext::at(0),
            )
            .unwrap();
        // Primary at 600 would blow the timeout; hedge finishes at 50+200.
        assert_eq!(out.total_latency_ms, 250);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn breaker_fast_fails_after_tripping() {
        let t = transport(exact(10, 1.0));
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 100,
                retries: 0,
                ..CallPolicy::default()
            },
        );
        let breakers = BreakerRegistry::new(BreakerConfig {
            failure_threshold: 1,
            open_ms: 1_000,
            half_open_successes: 1,
        });
        let ctx = ResilienceContext {
            now_ms: 0,
            breakers: Some(&breakers),
            ..Default::default()
        };
        let (err, burned) = c
            .call_resilient("svc", &ServiceRequest::get("/v", &[]), &ctx)
            .unwrap_err();
        assert!(matches!(err, ServiceError::TransportFailure { .. }));
        assert_eq!(burned, 10);
        // The failure tripped the breaker: the next call is rejected
        // without touching the wire, burning ~0 virtual ms.
        let ctx2 = ResilienceContext {
            now_ms: 20,
            breakers: Some(&breakers),
            ..Default::default()
        };
        let (err2, burned2) = c
            .call_resilient("svc", &ServiceRequest::get("/v", &[]), &ctx2)
            .unwrap_err();
        assert_eq!(
            err2,
            ServiceError::CircuitOpen {
                retry_after_ms: 990
            }
        );
        assert_eq!(burned2, 0);
    }

    #[test]
    fn budget_caps_attempt_timeouts_and_cuts_retries() {
        let t = transport(exact(200, 0.0));
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 100,
                retries: 1,
                ..CallPolicy::default()
            },
        );
        let ctx = ResilienceContext {
            now_ms: 0,
            budget_ms: Some(30),
            ..Default::default()
        };
        let (err, burned) = c
            .call_resilient("svc", &ServiceRequest::get("/v", &[]), &ctx)
            .unwrap_err();
        // The single affordable attempt times out at the 30ms budget;
        // the retry is cut because nothing remains.
        assert_eq!(err, ServiceError::DeadlineCut { budget_ms: 30 });
        assert_eq!(burned, 30);
    }

    #[test]
    fn zero_budget_is_cut_before_the_wire() {
        let t = transport(exact(10, 0.0));
        let c = ServiceClient::new(&t);
        let ctx = ResilienceContext {
            now_ms: 0,
            budget_ms: Some(0),
            ..Default::default()
        };
        let (err, burned) = c
            .call_resilient("svc", &ServiceRequest::get("/v", &[]), &ctx)
            .unwrap_err();
        assert_eq!(err, ServiceError::DeadlineCut { budget_ms: 0 });
        assert_eq!(burned, 0);
    }

    #[test]
    fn retry_budget_caps_policy_retries() {
        let t = transport(exact(10, 1.0));
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 100,
                retries: 5,
                ..CallPolicy::default()
            },
        );
        let ctx = ResilienceContext {
            now_ms: 0,
            max_retries: Some(0),
            ..Default::default()
        };
        let (_, burned) = c
            .call_resilient("svc", &ServiceRequest::get("/v", &[]), &ctx)
            .unwrap_err();
        // One attempt only, despite the policy allowing six.
        assert_eq!(burned, 10);
    }

    #[test]
    fn resilient_unknown_endpoint_is_fatal_and_free() {
        let t = transport(LatencyModel::fast());
        let c = ServiceClient::new(&t);
        let (err, burned) = c
            .call_resilient(
                "nope",
                &ServiceRequest::get("/v", &[]),
                &ResilienceContext::at(0),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::UnknownEndpoint(_)));
        assert_eq!(burned, 0);
    }

    #[test]
    fn outage_burns_the_timeout_per_attempt_without_a_breaker() {
        let mut t = SimulatedTransport::new(3);
        t.register("svc", Box::new(Fixed), exact(10, 0.0));
        t.set_fault_plan(FaultPlan::new().outage("svc", 0, 10_000));
        let c = ServiceClient::with_policy(
            &t,
            CallPolicy {
                timeout_ms: 150,
                retries: 1,
                ..CallPolicy::default()
            },
        );
        let (err, burned) = c
            .call_resilient(
                "svc",
                &ServiceRequest::get("/v", &[]),
                &ResilienceContext::at(0),
            )
            .unwrap_err();
        assert_eq!(err, ServiceError::Timeout { timeout_ms: 150 });
        assert_eq!(burned, 300);
    }
}
