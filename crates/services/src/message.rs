//! Request/response message model for simulated web services.
//!
//! The paper (§II-A): *"Symphony also supports dynamic data accessed
//! through SOAP and REST-based web services."* Both protocols are
//! modeled: a REST request is a method + path + query parameters; a
//! SOAP request is an operation + arguments. Responses are uniform
//! record sets, which is what the integration layer consumes.

/// HTTP-ish method for REST calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestMethod {
    /// Read.
    Get,
    /// Write (used by monitoring endpoints in tests).
    Post,
}

/// A REST request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestRequest {
    /// Method.
    pub method: RestMethod,
    /// Path under the endpoint ("/price").
    pub path: String,
    /// Query parameters in order.
    pub params: Vec<(String, String)>,
}

/// A SOAP request (envelope reduced to its operation + arguments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoapRequest {
    /// Operation name ("GetPrice").
    pub operation: String,
    /// Arguments in order.
    pub args: Vec<(String, String)>,
}

/// A protocol-tagged request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceRequest {
    /// REST-style.
    Rest(RestRequest),
    /// SOAP-style.
    Soap(SoapRequest),
}

impl ServiceRequest {
    /// Build a GET request.
    pub fn get(path: &str, params: &[(&str, &str)]) -> ServiceRequest {
        ServiceRequest::Rest(RestRequest {
            method: RestMethod::Get,
            path: path.to_string(),
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        })
    }

    /// Build a SOAP operation call.
    pub fn soap(operation: &str, args: &[(&str, &str)]) -> ServiceRequest {
        ServiceRequest::Soap(SoapRequest {
            operation: operation.to_string(),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        })
    }

    /// Parameter lookup, protocol-independent.
    pub fn param(&self, name: &str) -> Option<&str> {
        let pairs = match self {
            ServiceRequest::Rest(r) => &r.params,
            ServiceRequest::Soap(s) => &s.args,
        };
        pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The operation identity: REST path or SOAP operation name.
    pub fn operation(&self) -> &str {
        match self {
            ServiceRequest::Rest(r) => &r.path,
            ServiceRequest::Soap(s) => &s.operation,
        }
    }
}

/// One record in a response: ordered `(field, value)` pairs.
pub type ServiceRecord = Vec<(String, String)>;

/// A service response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceResponse {
    /// Records returned (empty on errors).
    pub records: Vec<ServiceRecord>,
}

impl ServiceResponse {
    /// A response with the given records.
    pub fn records(records: Vec<ServiceRecord>) -> ServiceResponse {
        ServiceResponse { records }
    }

    /// A single-record response from `(field, value)` pairs.
    pub fn single(fields: &[(&str, &str)]) -> ServiceResponse {
        ServiceResponse {
            records: vec![fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect()],
        }
    }

    /// An empty (no-records) response.
    pub fn empty() -> ServiceResponse {
        ServiceResponse {
            records: Vec::new(),
        }
    }

    /// Field of the first record.
    pub fn first_field(&self, name: &str) -> Option<&str> {
        self.records
            .first()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rest_builder_and_param() {
        let r = ServiceRequest::get("/price", &[("title", "Galactic Raiders")]);
        assert_eq!(r.operation(), "/price");
        assert_eq!(r.param("title"), Some("Galactic Raiders"));
        assert_eq!(r.param("missing"), None);
    }

    #[test]
    fn soap_builder_and_param() {
        let r = ServiceRequest::soap("GetPrice", &[("sku", "42")]);
        assert_eq!(r.operation(), "GetPrice");
        assert_eq!(r.param("sku"), Some("42"));
    }

    #[test]
    fn response_accessors() {
        let resp = ServiceResponse::single(&[("price", "49.99"), ("currency", "USD")]);
        assert_eq!(resp.first_field("price"), Some("49.99"));
        assert_eq!(resp.first_field("nope"), None);
        assert_eq!(ServiceResponse::empty().first_field("x"), None);
    }
}
