//! The [`Service`] trait and self-description (the WSDL analogue).

use crate::message::{ServiceRequest, ServiceResponse};

/// Wire protocol a service speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// REST endpoints.
    Rest,
    /// SOAP operations.
    Soap,
}

/// One operation in a service description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationDesc {
    /// REST path or SOAP operation name.
    pub name: String,
    /// Expected parameter names.
    pub params: Vec<String>,
    /// Field names produced per record.
    pub returns: Vec<String>,
}

/// A service's self-description (shown in the designer's data-source
/// palette, Fig. 1 left bar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescription {
    /// Human name ("Real-time pricing").
    pub name: String,
    /// Protocol.
    pub protocol: Protocol,
    /// Operations offered.
    pub operations: Vec<OperationDesc>,
}

/// Application-level error a service may return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceFault {
    /// Numeric code (HTTP-style).
    pub code: u16,
    /// Message.
    pub message: String,
}

impl std::fmt::Display for ServiceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service fault {}: {}", self.code, self.message)
    }
}

/// A web service implementation.
pub trait Service: Send + Sync {
    /// Self-description.
    fn describe(&self) -> ServiceDescription;

    /// Handle one request.
    fn handle(&self, request: &ServiceRequest) -> Result<ServiceResponse, ServiceFault>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Service for Echo {
        fn describe(&self) -> ServiceDescription {
            ServiceDescription {
                name: "Echo".into(),
                protocol: Protocol::Rest,
                operations: vec![OperationDesc {
                    name: "/echo".into(),
                    params: vec!["q".into()],
                    returns: vec!["echo".into()],
                }],
            }
        }
        fn handle(&self, request: &ServiceRequest) -> Result<ServiceResponse, ServiceFault> {
            match request.param("q") {
                Some(q) => Ok(ServiceResponse::single(&[("echo", q)])),
                None => Err(ServiceFault {
                    code: 400,
                    message: "missing q".into(),
                }),
            }
        }
    }

    #[test]
    fn trait_object_usable() {
        let s: Box<dyn Service> = Box::new(Echo);
        assert_eq!(s.describe().name, "Echo");
        let ok = s
            .handle(&ServiceRequest::get("/echo", &[("q", "hi")]))
            .unwrap();
        assert_eq!(ok.first_field("echo"), Some("hi"));
        let err = s.handle(&ServiceRequest::get("/echo", &[])).unwrap_err();
        assert_eq!(err.code, 400);
        assert!(err.to_string().contains("missing q"));
    }
}
