//! # symphony-store
//!
//! The structured-data substrate of the Symphony reproduction: private
//! per-tenant storage and indexing for application designers'
//! proprietary data (paper §II-A, "Proprietary Data").
//!
//! * [`value`] / [`schema`] — typed cells, schema inference.
//! * [`aggregate`] — grouped COUNT/SUM/AVG/MIN/MAX over tables.
//! * [`table`] — slotted tables with stable record ids.
//! * [`indexes`] / [`filter`] / [`indexed`] — secondary indexes, the
//!   filter algebra, and the planner-backed [`indexed::IndexedTable`].
//! * [`fulltext`] — full-text views bridging to `symphony-text`.
//! * [`formats`] — from-scratch CSV/TSV, JSON, XML, RSS, and worksheet
//!   (Excel stand-in) parsers.
//! * [`ingest`] — upload methods, schema inference, and the crawler.
//! * [`tenant`] — private, access-key-guarded tenant spaces.
//!
//! ## Quick example
//!
//! ```
//! use symphony_store::ingest::{ingest, DataFormat};
//! use symphony_store::indexed::IndexedTable;
//! use symphony_text::Query;
//!
//! let csv = "title,genre,price\nGalactic Raiders,shooter,49.99\nFarm Story,sim,19.99\n";
//! let (table, report) = ingest("inventory", csv, DataFormat::Csv).unwrap();
//! assert_eq!(report.rows, 2);
//!
//! let mut indexed = IndexedTable::new(table);
//! indexed.enable_fulltext(&[("title", 2.0), ("genre", 1.0)]).unwrap();
//! let hits = indexed.search(&Query::parse("shooter"), 10).unwrap();
//! assert_eq!(hits.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod datetime;
pub mod error;
pub mod filter;
pub mod formats;
pub mod fulltext;
pub mod hybrid;
pub mod indexed;
pub mod indexes;
pub mod ingest;
pub mod schema;
pub mod table;
pub mod tenant;
pub mod value;

pub use aggregate::{aggregate, Aggregate, GroupRow};
pub use error::StoreError;
pub use filter::{CmpOp, Filter};
pub use hybrid::{FacetCounts, HybridExplain, HybridPlan, HybridQuery, HybridResult};
pub use indexed::{AccessPath, IndexedTable, SortDir, TableQuery};
pub use indexes::IndexKind;
pub use ingest::{DataFormat, FetchedPage, IngestReport, PageFetcher, UploadMethod};
pub use schema::{FieldDef, FieldType, Schema};
pub use table::{Record, RecordId, Table};
pub use tenant::{AccessKey, Store, TenantId, TenantSpace};
pub use value::Value;
