//! Hybrid structured + full-text queries over an [`IndexedTable`].
//!
//! The paper composes *sources*; this module composes *predicates*: a
//! designer can ask "reviews mentioning 'oak' where price < 20 and
//! in_stock" as one query. A small cost-based planner reads exact
//! cardinalities off the maintained secondary-index counters and picks
//! one of three rank-equivalent strategies:
//!
//! * **filter-first** — resolve the structured predicate through the
//!   secondary indexes into an exact record set, translate it to a
//!   [`DocSet`](symphony_text::DocSet), and run pruned top-k with the
//!   set riding the executor as a non-scoring conjunctive cursor
//!   (selective predicates skip posting blocks decode-free);
//! * **search-first** — pruned top-k with geometric over-fetch and a
//!   post-filter refill, for predicates too dense to enumerate;
//! * **scan** — exhaustive scoring under a closure, for tables too
//!   small to plan about.
//!
//! All three return bit-identical `(record, score)` lists (see the
//! `hybrid_plan_invariance` proptest): the pruned executor is rank-safe
//! versus exhaustive scoring, and the over-fetch loop only stops once
//! the ranked prefix it holds is provably complete, so plan choice is
//! purely a performance decision — which is what lets the planner be
//! cost-based at all.

use crate::error::StoreError;
use crate::filter::Filter;
use crate::fulltext::TextHit;
use crate::indexed::{AccessPath, IndexedTable, TableQuery};
use crate::table::RecordId;
use crate::value::{Value, ValueKey};
use symphony_text::query::Query;

/// Planner's choice of execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridPlan {
    /// Resolve the filter via indexes, push the record set into the
    /// text executor as a skip cursor.
    FilterFirst,
    /// Pruned text search with over-fetch + post-filter refill.
    SearchFirst,
    /// Exhaustive scoring under a closure filter.
    Scan,
}

impl HybridPlan {
    /// Stable lowercase name for EXPLAIN output and benchmarks.
    pub fn name(self) -> &'static str {
        match self {
            HybridPlan::FilterFirst => "filter-first",
            HybridPlan::SearchFirst => "search-first",
            HybridPlan::Scan => "scan",
        }
    }
}

/// A hybrid query: one text clause plus one structured predicate, with
/// a result budget and optional facet columns.
#[derive(Debug, Clone)]
pub struct HybridQuery {
    /// Full-text clause, run over the table's full-text view.
    pub text: Query,
    /// Structured predicate over the table's columns.
    pub filter: Filter,
    /// Maximum hits returned.
    pub k: usize,
    /// Columns to facet-count over the structured candidate set.
    pub facets: Vec<usize>,
}

impl HybridQuery {
    /// A query with no facets.
    pub fn new(text: Query, filter: Filter, k: usize) -> HybridQuery {
        HybridQuery {
            text,
            filter,
            k,
            facets: Vec::new(),
        }
    }
}

/// EXPLAIN output: what the planner saw and what it chose.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridExplain {
    /// Chosen strategy.
    pub plan: HybridPlan,
    /// Access path the structured side would use (meaningful for
    /// filter-first; recorded for all plans).
    pub access: AccessPath,
    /// Upper bound on filter matches off index counters (`None` when
    /// no conjunct is index-backed).
    pub estimated_matches: Option<usize>,
    /// Live rows in the table at plan time.
    pub table_rows: usize,
    /// `estimated_matches / table_rows`, when both are known.
    pub selectivity: Option<f64>,
}

/// Facet counts for one column over the structured candidate set.
#[derive(Debug, Clone, PartialEq)]
pub struct FacetCounts {
    /// Faceted column.
    pub col: usize,
    /// `(value, count)` pairs, descending by count then value order.
    pub values: Vec<(Value, usize)>,
}

/// Result of a hybrid query.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridResult {
    /// Top-k `(record, score)` hits, best first.
    pub hits: Vec<TextHit>,
    /// Facet counts, one per requested column.
    pub facets: Vec<FacetCounts>,
    /// What the planner chose and why.
    pub explain: HybridExplain,
}

/// Below this row count the planner does not bother with indexes: an
/// exhaustive scan of a tiny table beats any plan overhead.
const SCAN_FLOOR_ROWS: usize = 32;

/// Filter-first is chosen when the estimated match fraction is at or
/// under this: enumerating the candidate set is then cheaper than the
/// blocks the pushdown cursor lets the executor skip.
const FILTER_FIRST_MAX_SELECTIVITY: f64 = 0.05;

/// First over-fetch budget for search-first, as a function of `k`.
fn initial_overfetch(k: usize) -> usize {
    k * 4 + 8
}

impl IndexedTable {
    /// Plan a hybrid query without running it.
    pub fn hybrid_explain(&self, q: &HybridQuery) -> HybridExplain {
        let table_rows = self.table().len();
        let access = self.explain(&q.filter);
        let estimated_matches = self.estimate_filter_matches(&q.filter);
        let selectivity = estimated_matches
            .filter(|_| table_rows > 0)
            .map(|e| e as f64 / table_rows as f64);
        let plan = if table_rows <= SCAN_FLOOR_ROWS {
            HybridPlan::Scan
        } else {
            match (estimated_matches, selectivity) {
                (Some(0), _) => HybridPlan::FilterFirst,
                (Some(_), Some(s))
                    if s <= FILTER_FIRST_MAX_SELECTIVITY && access != AccessPath::FullScan =>
                {
                    HybridPlan::FilterFirst
                }
                _ => HybridPlan::SearchFirst,
            }
        };
        HybridExplain {
            plan,
            access,
            estimated_matches,
            table_rows,
            selectivity,
        }
    }

    /// Run a hybrid query under the planner's chosen strategy.
    pub fn hybrid_query(&self, q: &HybridQuery) -> Result<HybridResult, StoreError> {
        self.hybrid_query_planned(q, None)
    }

    /// Run a hybrid query, optionally forcing a strategy (`None` lets
    /// the planner choose). Forcing exists for the differential tests
    /// and the `e-hybrid` experiment, which assert all three plans
    /// return bit-identical lists.
    pub fn hybrid_query_planned(
        &self,
        q: &HybridQuery,
        force: Option<HybridPlan>,
    ) -> Result<HybridResult, StoreError> {
        let ft = self.fulltext().ok_or(StoreError::NoFullText)?;
        let mut explain = self.hybrid_explain(q);
        if let Some(p) = force {
            explain.plan = p;
        }
        let hits = match explain.plan {
            HybridPlan::FilterFirst => {
                // Exact candidate set via the structured planner (index
                // lookup + residual eval), then pushdown.
                let (rows, _) = self.query_explained(&TableQuery::filtered(q.filter.clone()));
                let set = ft.doc_set_for(rows.into_iter().map(|(id, _)| id));
                ft.search_docset(&q.text, q.k, &set)
            }
            HybridPlan::SearchFirst => {
                let accept = |id: RecordId| self.table().get(id).is_some_and(|r| q.filter.eval(r));
                let mut fetch = initial_overfetch(q.k);
                loop {
                    let ranked = ft.search(&q.text, fetch);
                    let complete = ranked.len() < fetch;
                    let mut kept: Vec<TextHit> =
                        ranked.into_iter().filter(|h| accept(h.record)).collect();
                    // Rank-safe stop: either k survivors inside a ranked
                    // prefix we fully hold, or the prefix is the whole
                    // match set.
                    if kept.len() >= q.k || complete {
                        kept.truncate(q.k);
                        break kept;
                    }
                    fetch *= 2;
                }
            }
            HybridPlan::Scan => {
                let accept = |id: RecordId| self.table().get(id).is_some_and(|r| q.filter.eval(r));
                ft.search_exhaustive_filtered(&q.text, q.k, accept)
            }
        };
        let facets = self.facet_counts(&q.filter, &q.facets);
        Ok(HybridResult {
            hits,
            facets,
            explain,
        })
    }

    /// Facet counts over the structured candidate set. When the filter
    /// is trivial and the column has an ordered index, counts are read
    /// straight off the maintained per-key lists (no record touched);
    /// otherwise the candidate rows are tallied once for all columns.
    pub fn facet_counts(&self, filter: &Filter, cols: &[usize]) -> Vec<FacetCounts> {
        if cols.is_empty() {
            return Vec::new();
        }
        let trivial = matches!(filter, Filter::True);
        let mut out = Vec::with_capacity(cols.len());
        let mut candidates: Option<Vec<(RecordId, &crate::table::Record)>> = None;
        for &col in cols {
            // Fast path: whole-table facet off the index counters.
            if trivial {
                if let Some(counts) = self.secondary_index(col).and_then(|ix| ix.value_counts()) {
                    out.push(FacetCounts {
                        col,
                        values: sort_facet(counts),
                    });
                    continue;
                }
            }
            let rows =
                candidates.get_or_insert_with(|| self.query(&TableQuery::filtered(filter.clone())));
            let mut tally: Vec<(Value, usize)> = Vec::new();
            let mut seen: std::collections::HashMap<ValueKey, usize> =
                std::collections::HashMap::new();
            for (_, rec) in rows.iter() {
                let v = rec.get(col);
                match seen.entry(v.hash_key()) {
                    std::collections::hash_map::Entry::Occupied(e) => tally[*e.get()].1 += 1,
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(tally.len());
                        tally.push((v.clone(), 1));
                    }
                }
            }
            out.push(FacetCounts {
                col,
                values: sort_facet(tally),
            });
        }
        out
    }
}

/// Descending by count, then total value order for determinism.
fn sort_facet(mut values: Vec<(Value, usize)>) -> Vec<(Value, usize)> {
    values.sort_by(|(va, ca), (vb, cb)| cb.cmp(ca).then_with(|| va.cmp_total(vb)));
    values
}

/// Join a set of typed keys (e.g. pulled from a search vertical's
/// results) against a tenant table on column `col`: for each key, the
/// record ids whose `col` equals it — index-backed when `col` is
/// indexed, scan otherwise. Keys that match nothing are kept with an
/// empty id list so callers can see the miss.
pub fn join_on_column(
    table: &IndexedTable,
    col: usize,
    keys: &[Value],
) -> Vec<(Value, Vec<RecordId>)> {
    keys.iter()
        .map(|k| (k.clone(), table.join_on_column(col, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexes::IndexKind;
    use crate::schema::{FieldType, Schema};
    use crate::table::{Record, Table};
    use crate::value::Value;
    use crate::CmpOp;

    /// A review corpus: `n` rows, price cycling 0..100, every third
    /// row in stock, text alternating vocabulary.
    fn reviews(n: usize) -> IndexedTable {
        let schema = Schema::of(&[
            ("product", FieldType::Text),
            ("body", FieldType::Text),
            ("price", FieldType::Int),
            ("in_stock", FieldType::Bool),
        ]);
        let mut it = IndexedTable::new(Table::new("reviews", schema));
        for i in 0..n {
            let body = match i % 3 {
                0 => "smoky oak finish with vanilla",
                1 => "bright citrus and melon",
                _ => "oak barrel aged, deep tannins",
            };
            it.insert(Record::new(vec![
                Value::Text(format!("product-{}", i % 10)),
                Value::Text(body.into()),
                Value::Int((i % 100) as i64),
                Value::Bool(i % 3 == 0),
            ]));
        }
        it.create_index("price", IndexKind::Ordered).unwrap();
        it.create_index("in_stock", IndexKind::Hash).unwrap();
        it.enable_fulltext(&[("product", 2.0), ("body", 1.0)])
            .unwrap();
        it.optimize_fulltext();
        it
    }

    fn price_under(v: i64) -> Filter {
        Filter::cmp(2, CmpOp::Lt, Value::Int(v))
    }

    #[test]
    fn planner_picks_filter_first_when_selective() {
        let it = reviews(500);
        let q = HybridQuery::new(Query::parse("oak"), price_under(3), 10);
        let ex = it.hybrid_explain(&q);
        assert_eq!(ex.plan, HybridPlan::FilterFirst);
        assert_eq!(ex.access, AccessPath::IndexRange { col: 2 });
        // Inclusive-bound upper estimate: prices 0..=3 → 4 keys × 5 rows.
        assert_eq!(ex.estimated_matches, Some(20));
        assert!(ex.selectivity.unwrap() <= 0.05);
    }

    #[test]
    fn planner_picks_search_first_when_dense() {
        let it = reviews(500);
        let q = HybridQuery::new(Query::parse("oak"), price_under(80), 10);
        assert_eq!(it.hybrid_explain(&q).plan, HybridPlan::SearchFirst);
    }

    #[test]
    fn planner_scans_tiny_tables() {
        let it = reviews(20);
        let q = HybridQuery::new(Query::parse("oak"), price_under(3), 10);
        assert_eq!(it.hybrid_explain(&q).plan, HybridPlan::Scan);
    }

    #[test]
    fn unindexed_filter_falls_back_to_search_first() {
        let it = reviews(500);
        // in_stock AND product eq: product is unindexed, in_stock is
        // dense — estimate comes from in_stock only.
        let f = Filter::eq(0, Value::Text("product-1".into()));
        let q = HybridQuery::new(Query::parse("oak"), f, 10);
        let ex = it.hybrid_explain(&q);
        assert_eq!(ex.plan, HybridPlan::SearchFirst);
        assert_eq!(ex.estimated_matches, None);
    }

    #[test]
    fn all_three_plans_agree_bit_for_bit() {
        let it = reviews(400);
        for filt in [
            price_under(2),
            price_under(50),
            Filter::eq(3, Value::Bool(true)).and(price_under(30)),
            Filter::cmp(2, CmpOp::Ge, Value::Int(95)),
        ] {
            let q = HybridQuery::new(Query::parse("oak finish"), filt, 7);
            let key = |r: &HybridResult| {
                r.hits
                    .iter()
                    .map(|h| (h.record, h.score.to_bits()))
                    .collect::<Vec<_>>()
            };
            let ff = it
                .hybrid_query_planned(&q, Some(HybridPlan::FilterFirst))
                .unwrap();
            let sf = it
                .hybrid_query_planned(&q, Some(HybridPlan::SearchFirst))
                .unwrap();
            let sc = it.hybrid_query_planned(&q, Some(HybridPlan::Scan)).unwrap();
            assert_eq!(key(&ff), key(&sf));
            assert_eq!(key(&ff), key(&sc));
            assert!(!ff.hits.is_empty());
        }
    }

    #[test]
    fn empty_filter_set_returns_no_hits() {
        let it = reviews(200);
        let q = HybridQuery::new(Query::parse("oak"), price_under(0), 10);
        let r = it.hybrid_query(&q).unwrap();
        assert_eq!(r.explain.plan, HybridPlan::FilterFirst);
        assert!(r.hits.is_empty());
    }

    #[test]
    fn hybrid_without_fulltext_errors() {
        let schema = Schema::of(&[("a", FieldType::Text)]);
        let it = IndexedTable::new(Table::new("t", schema));
        let q = HybridQuery::new(Query::parse("x"), Filter::True, 5);
        assert_eq!(it.hybrid_query(&q).unwrap_err(), StoreError::NoFullText);
    }

    #[test]
    fn facets_over_candidate_set() {
        let it = reviews(300);
        let mut q = HybridQuery::new(Query::parse("oak"), price_under(10), 10);
        q.facets = vec![3]; // in_stock
        let r = it.hybrid_query(&q).unwrap();
        assert_eq!(r.facets.len(), 1);
        let total: usize = r.facets[0].values.iter().map(|(_, c)| c).sum();
        // 300 rows, price < 10 → prices 0..9 → 30 candidates.
        assert_eq!(total, 30);
    }

    #[test]
    fn trivial_filter_facet_uses_index_fast_path() {
        let it = reviews(300);
        let counts = it.facet_counts(&Filter::True, &[2]);
        let total: usize = counts[0].values.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 300);
        assert_eq!(counts[0].values.len(), 100);
    }

    #[test]
    fn join_on_column_uses_index_or_scan() {
        let it = reviews(100);
        let keys = vec![
            Value::Text("product-3".into()),
            Value::Text("product-nope".into()),
        ];
        // product (col 0) is unindexed → scan side.
        let joined = join_on_column(&it, 0, &keys);
        assert_eq!(joined[0].1.len(), 10);
        assert!(joined[1].1.is_empty());
        // price (col 2) is indexed → index side.
        let j2 = join_on_column(&it, 2, &[Value::Int(5)]);
        assert_eq!(j2[0].1.len(), 1);
    }
}
