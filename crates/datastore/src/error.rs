//! Error type for the structured store.

/// Errors surfaced by the store and ingest pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A referenced table does not exist in the tenant space.
    UnknownTable(String),
    /// Full-text search requested on a table without a full-text view.
    NoFullText,
    /// Malformed input during parsing; the message names the format
    /// and position.
    Parse(String),
    /// The upload declared a format the pipeline does not understand.
    UnsupportedFormat(String),
    /// Wrong access key for a private tenant space.
    AccessDenied,
    /// An index already exists on the column.
    IndexExists(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            StoreError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            StoreError::NoFullText => write!(f, "table has no full-text view"),
            StoreError::Parse(m) => write!(f, "parse error: {m}"),
            StoreError::UnsupportedFormat(x) => write!(f, "unsupported format: {x}"),
            StoreError::AccessDenied => write!(f, "access denied"),
            StoreError::IndexExists(c) => write!(f, "index already exists on column: {c}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StoreError::UnknownColumn("x".into()).to_string(),
            "unknown column: x"
        );
        assert_eq!(StoreError::AccessDenied.to_string(), "access denied");
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(StoreError::NoFullText);
        assert!(e.to_string().contains("full-text"));
    }
}
