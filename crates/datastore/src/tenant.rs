//! Per-tenant private spaces.
//!
//! Paper §II-A: *"Symphony provides private and secure space to store
//! and index proprietary data belonging to the application designer."*
//! A [`Store`] hosts many tenants; each tenant's tables are reachable
//! only with that tenant's access key.

use crate::error::StoreError;
use crate::indexed::IndexedTable;
use std::collections::BTreeMap;

/// Identifier of a tenant (application designer) in a [`Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

/// Opaque bearer credential for a tenant space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessKey(pub String);

/// A tenant's private table namespace.
#[derive(Debug)]
pub struct TenantSpace {
    tenant: TenantId,
    name: String,
    tables: BTreeMap<String, IndexedTable>,
}

impl TenantSpace {
    /// Owning tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Human name ("GamerQueen").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register (or replace) a table under its own name.
    pub fn put_table(&mut self, table: IndexedTable) {
        self.tables.insert(table.table().name().to_string(), table);
    }

    /// Fetch a table by name.
    pub fn table(&self, name: &str) -> Result<&IndexedTable, StoreError> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// Fetch a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut IndexedTable, StoreError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// Drop a table; returns it if present.
    pub fn drop_table(&mut self, name: &str) -> Option<IndexedTable> {
        self.tables.remove(name)
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Mutably iterate every table (name order). Platform-internal:
    /// used by warmup to optimize full-text views across tenants.
    pub fn tables_mut(&mut self) -> impl Iterator<Item = &mut IndexedTable> {
        self.tables.values_mut()
    }

    /// Total live records across tables (quota accounting).
    pub fn total_records(&self) -> usize {
        self.tables.values().map(|t| t.table().len()).sum()
    }
}

/// The multi-tenant store.
#[derive(Debug, Default)]
pub struct Store {
    spaces: Vec<(AccessKey, TenantSpace)>,
}

impl Store {
    /// Empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Create a tenant space, returning the id and its access key.
    ///
    /// Keys are derived deterministically but unguessably enough for a
    /// simulation (a real deployment would use a CSPRNG; the
    /// reproduction keeps the store crate dependency-free).
    pub fn create_tenant(&mut self, name: &str) -> (TenantId, AccessKey) {
        let id = TenantId(self.spaces.len() as u32);
        let key = AccessKey(format!("sk-{:08x}-{}", mix(id.0, name), id.0));
        self.spaces.push((
            key.clone(),
            TenantSpace {
                tenant: id,
                name: name.to_string(),
                tables: BTreeMap::new(),
            },
        ));
        (id, key)
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.spaces.len()
    }

    /// Authenticate and borrow a space.
    pub fn space(&self, tenant: TenantId, key: &AccessKey) -> Result<&TenantSpace, StoreError> {
        match self.spaces.get(tenant.0 as usize) {
            Some((k, space)) if k == key => Ok(space),
            Some(_) => Err(StoreError::AccessDenied),
            None => Err(StoreError::AccessDenied),
        }
    }

    /// Trusted platform-internal accessor: borrow a space *without*
    /// its key. The hosting layer uses this when executing a tenant's
    /// own published application — the tenant authorized that access
    /// at registration. External callers must use [`Store::space`].
    pub fn space_by_id(&self, tenant: TenantId) -> Option<&TenantSpace> {
        self.spaces.get(tenant.0 as usize).map(|(_, s)| s)
    }

    /// Trusted platform-internal accessor: mutably iterate every
    /// tenant space without keys, in tenant-id order. The hosting
    /// layer uses this for maintenance passes (warmup optimization);
    /// external callers must authenticate via [`Store::space_mut`].
    pub fn spaces_mut(&mut self) -> impl Iterator<Item = &mut TenantSpace> {
        self.spaces.iter_mut().map(|(_, s)| s)
    }

    /// Authenticate and borrow a space mutably.
    pub fn space_mut(
        &mut self,
        tenant: TenantId,
        key: &AccessKey,
    ) -> Result<&mut TenantSpace, StoreError> {
        match self.spaces.get_mut(tenant.0 as usize) {
            Some((k, space)) if k == key => Ok(space),
            Some(_) => Err(StoreError::AccessDenied),
            None => Err(StoreError::AccessDenied),
        }
    }
}

fn mix(id: u32, name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes().chain(id.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FieldType, Schema};
    use crate::table::Table;

    fn a_table(name: &str) -> IndexedTable {
        IndexedTable::new(Table::new(name, Schema::of(&[("x", FieldType::Int)])))
    }

    #[test]
    fn create_and_access() {
        let mut store = Store::new();
        let (id, key) = store.create_tenant("GamerQueen");
        let space = store.space_mut(id, &key).unwrap();
        space.put_table(a_table("inv"));
        assert_eq!(space.table_names(), vec!["inv"]);
        assert!(store.space(id, &key).unwrap().table("inv").is_ok());
    }

    #[test]
    fn wrong_key_denied() {
        let mut store = Store::new();
        let (id, _key) = store.create_tenant("A");
        let bad = AccessKey("sk-wrong".into());
        assert_eq!(store.space(id, &bad).unwrap_err(), StoreError::AccessDenied);
    }

    #[test]
    fn cross_tenant_key_denied() {
        let mut store = Store::new();
        let (a, key_a) = store.create_tenant("A");
        let (b, key_b) = store.create_tenant("B");
        assert!(store.space(a, &key_b).is_err());
        assert!(store.space(b, &key_a).is_err());
        assert!(store.space(a, &key_a).is_ok());
    }

    #[test]
    fn unknown_tenant_denied() {
        let store = Store::new();
        assert!(store.space(TenantId(9), &AccessKey("sk-x".into())).is_err());
    }

    #[test]
    fn keys_are_distinct() {
        let mut store = Store::new();
        let (_, k1) = store.create_tenant("A");
        let (_, k2) = store.create_tenant("A");
        assert_ne!(k1, k2);
    }

    #[test]
    fn table_lifecycle() {
        let mut store = Store::new();
        let (id, key) = store.create_tenant("A");
        let space = store.space_mut(id, &key).unwrap();
        space.put_table(a_table("t1"));
        space.put_table(a_table("t2"));
        assert_eq!(space.total_records(), 0);
        assert!(space.drop_table("t1").is_some());
        assert!(space.drop_table("t1").is_none());
        assert_eq!(
            space.table("t1").unwrap_err(),
            StoreError::UnknownTable("t1".into())
        );
        assert_eq!(space.table_names(), vec!["t2"]);
    }
}
