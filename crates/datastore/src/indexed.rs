//! [`IndexedTable`]: a table plus its secondary indexes and optional
//! full-text view, kept in sync through one mutation interface, with a
//! small planner for structured queries.

use crate::error::StoreError;
use crate::filter::{CmpOp, Filter};
use crate::fulltext::{FullTextView, TextHit};
use crate::indexes::{IndexKind, SecondaryIndex};
use crate::table::{Record, RecordId, Table};
use crate::value::Value;

/// Sort direction for [`TableQuery::sort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// A structured query: filter, then sort, then offset/limit.
#[derive(Debug, Clone)]
pub struct TableQuery {
    /// Row predicate.
    pub filter: Filter,
    /// Sort keys applied in order.
    pub sort: Vec<(usize, SortDir)>,
    /// Rows skipped after sorting.
    pub offset: usize,
    /// Maximum rows returned (`None` = all).
    pub limit: Option<usize>,
}

impl Default for TableQuery {
    fn default() -> Self {
        TableQuery {
            filter: Filter::True,
            sort: Vec::new(),
            offset: 0,
            limit: None,
        }
    }
}

impl TableQuery {
    /// Query with just a filter.
    pub fn filtered(filter: Filter) -> TableQuery {
        TableQuery {
            filter,
            ..TableQuery::default()
        }
    }
}

/// How the planner decided to fetch candidates (exposed for tests and
/// the EXPLAIN-style output in the experiments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Point lookup on an index.
    IndexEq {
        /// Column of the chosen index.
        col: usize,
    },
    /// Range scan on an ordered index.
    IndexRange {
        /// Column of the chosen index.
        col: usize,
    },
    /// Full table scan.
    FullScan,
}

/// A fully-resolved access plan: the chosen index is borrowed and the
/// lookup values are extracted at plan time, so execution cannot
/// disagree with the plan (the old two-pass design re-derived the
/// values from the filter and panicked on mismatch).
enum PlannedAccess<'a> {
    /// Point lookup: `ix` is the index over `col`, `value` the literal
    /// pulled from the same conjunct the planner matched.
    Eq {
        ix: &'a SecondaryIndex,
        col: usize,
        value: Value,
    },
    /// Range scan on an ordered index (inclusive bounds; the residual
    /// filter re-checks strict comparisons).
    Range {
        ix: &'a SecondaryIndex,
        col: usize,
        low: Option<Value>,
        high: Option<Value>,
    },
    /// Full table scan.
    Scan,
}

impl PlannedAccess<'_> {
    /// The EXPLAIN-surface shape of this plan.
    fn path(&self) -> AccessPath {
        match self {
            PlannedAccess::Eq { col, .. } => AccessPath::IndexEq { col: *col },
            PlannedAccess::Range { col, .. } => AccessPath::IndexRange { col: *col },
            PlannedAccess::Scan => AccessPath::FullScan,
        }
    }
}

/// A table with maintained secondary indexes and an optional full-text
/// view.
#[derive(Debug)]
pub struct IndexedTable {
    table: Table,
    secondary: Vec<SecondaryIndex>,
    fulltext: Option<FullTextView>,
}

impl IndexedTable {
    /// Wrap an existing table (no indexes yet; existing rows are
    /// indexed when indexes are created).
    pub fn new(table: Table) -> IndexedTable {
        IndexedTable {
            table,
            secondary: Vec::new(),
            fulltext: None,
        }
    }

    /// Borrow the underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Create a secondary index over `col_name`, backfilling existing
    /// rows.
    pub fn create_index(&mut self, col_name: &str, kind: IndexKind) -> Result<(), StoreError> {
        let col = self
            .table
            .schema()
            .col(col_name)
            .ok_or_else(|| StoreError::UnknownColumn(col_name.to_string()))?;
        if self.secondary.iter().any(|ix| ix.col() == col) {
            return Err(StoreError::IndexExists(col_name.to_string()));
        }
        let mut ix = SecondaryIndex::new(kind, col);
        for (id, rec) in self.table.iter() {
            ix.insert(rec.get(col), id);
        }
        self.secondary.push(ix);
        Ok(())
    }

    /// Enable full-text search over `(column, boost)` pairs,
    /// backfilling existing rows (in parallel when the table is large
    /// enough to benefit). Replaces any previous view.
    pub fn enable_fulltext(&mut self, searchable: &[(&str, f32)]) -> Result<(), StoreError> {
        let mut view = FullTextView::new(self.table.schema(), searchable)?;
        view.add_bulk(self.table.iter(), symphony_text::default_build_threads());
        self.fulltext = Some(view);
        Ok(())
    }

    /// Compress the full-text view's posting lists and precompute its
    /// score-bound stats (no-op without a view). The hosting layer
    /// calls this during warmup so first queries skip the raw-postings
    /// slow path.
    pub fn optimize_fulltext(&mut self) {
        if let Some(ft) = &mut self.fulltext {
            ft.optimize();
        }
    }

    /// Run one incremental maintenance step on the full-text view —
    /// seal the memtable when it is over the policy's size cap or
    /// staleness window, then at most one background merge. `None`
    /// without a view. The hosting layer calls this from its virtual
    /// clock so segment lifecycle is deterministic under replay.
    pub fn maintain_fulltext(&mut self, now_ms: u64) -> Option<symphony_text::MaintenanceReport> {
        self.fulltext.as_mut().map(|ft| ft.maintain(now_ms))
    }

    /// Replace the full-text view's segment policy (no-op without a
    /// view).
    pub fn set_fulltext_policy(&mut self, policy: symphony_text::SegmentPolicy) {
        if let Some(ft) = &mut self.fulltext {
            ft.set_policy(policy);
        }
    }

    /// Insert a record, maintaining all indexes.
    pub fn insert(&mut self, record: Record) -> RecordId {
        let id = self.table.insert(record);
        let rec = self.table.get(id).expect("just inserted");
        for ix in &mut self.secondary {
            ix.insert(rec.get(ix.col()), id);
        }
        if let Some(ft) = &mut self.fulltext {
            ft.add(id, rec);
        }
        id
    }

    /// Insert from raw strings (see
    /// [`Table::insert_raw`](crate::table::Table::insert_raw)).
    pub fn insert_raw(&mut self, raw: &[String]) -> RecordId {
        let id = self.table.insert_raw(raw);
        let rec = self.table.get(id).expect("just inserted");
        for ix in &mut self.secondary {
            ix.insert(rec.get(ix.col()), id);
        }
        if let Some(ft) = &mut self.fulltext {
            ft.add(id, rec);
        }
        id
    }

    /// Delete a record, maintaining all indexes.
    pub fn delete(&mut self, id: RecordId) -> Option<Record> {
        let old = self.table.delete(id)?;
        for ix in &mut self.secondary {
            ix.remove(old.get(ix.col()), id);
        }
        if let Some(ft) = &mut self.fulltext {
            ft.remove(id);
        }
        Some(old)
    }

    /// Update a record, maintaining all indexes.
    pub fn update(&mut self, id: RecordId, record: Record) -> Option<Record> {
        let old = self.table.update(id, record)?;
        let new = self.table.get(id).expect("just updated");
        for ix in &mut self.secondary {
            ix.remove(old.get(ix.col()), id);
            ix.insert(new.get(ix.col()), id);
        }
        if let Some(ft) = &mut self.fulltext {
            ft.add(id, new);
        }
        Some(old)
    }

    /// Plan the access path for a filter. The returned plan carries the
    /// resolved index reference and lookup values, so execution never
    /// re-derives them from the filter shape (a mismatch used to panic
    /// here; now it is unrepresentable — anything the planner cannot
    /// fully resolve degrades to [`PlannedAccess::Scan`]).
    fn plan<'a>(&'a self, filter: &Filter) -> PlannedAccess<'a> {
        // Flatten top-level conjunctions and look for a usable
        // conjunct. Preference: index equality, then ordered range.
        let mut conjuncts = Vec::new();
        flatten_and(filter, &mut conjuncts);
        let mut range: Option<(&SecondaryIndex, usize)> = None;
        for c in &conjuncts {
            if let Filter::Cmp { col, op, value } = c {
                let Some(ix) = self.secondary.iter().find(|ix| ix.col() == *col) else {
                    continue;
                };
                match op {
                    CmpOp::Eq => {
                        return PlannedAccess::Eq {
                            ix,
                            col: *col,
                            value: value.clone(),
                        }
                    }
                    CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge
                        if ix.kind() == IndexKind::Ordered && range.is_none() =>
                    {
                        range = Some((ix, *col));
                    }
                    _ => {}
                }
            }
        }
        match range {
            Some((ix, col)) => {
                let (low, high) = find_range_bounds(filter, col);
                PlannedAccess::Range { ix, col, low, high }
            }
            None => PlannedAccess::Scan,
        }
    }

    /// The access path the planner would choose for a filter (exposed
    /// for tests and EXPLAIN output).
    pub fn explain(&self, filter: &Filter) -> AccessPath {
        self.plan(filter).path()
    }

    /// Run a structured query.
    pub fn query(&self, q: &TableQuery) -> Vec<(RecordId, &Record)> {
        self.query_explained(q).0
    }

    /// Run a structured query, returning the rows together with the
    /// access path that actually executed (plan and execution are one
    /// fused pass, so the reported path can never diverge from what
    /// ran).
    pub fn query_explained(&self, q: &TableQuery) -> (Vec<(RecordId, &Record)>, AccessPath) {
        let plan = self.plan(&q.filter);
        let path = plan.path();
        let mut rows: Vec<(RecordId, &Record)> = match plan {
            PlannedAccess::Eq { ix, value, .. } => ix
                .lookup_eq(&value)
                .into_iter()
                .filter_map(|id| self.table.get(id).map(|r| (id, r)))
                .filter(|(_, r)| q.filter.eval(r))
                .collect(),
            PlannedAccess::Range { ix, low, high, .. } => ix
                .lookup_range(low.as_ref(), high.as_ref())
                .unwrap_or_default()
                .into_iter()
                .filter_map(|id| self.table.get(id).map(|r| (id, r)))
                .filter(|(_, r)| q.filter.eval(r))
                .collect(),
            PlannedAccess::Scan => self
                .table
                .iter()
                .filter(|(_, r)| q.filter.eval(r))
                .collect(),
        };
        if !q.sort.is_empty() {
            rows.sort_by(|(ia, a), (ib, b)| {
                for &(col, dir) in &q.sort {
                    let ord = a.get(col).cmp_total(b.get(col));
                    let ord = match dir {
                        SortDir::Asc => ord,
                        SortDir::Desc => ord.reverse(),
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                ia.cmp(ib)
            });
        } else {
            rows.sort_by_key(|(id, _)| *id);
        }
        let end = q
            .limit
            .map(|l| (q.offset + l).min(rows.len()))
            .unwrap_or(rows.len());
        let start = q.offset.min(end);
        (rows[start..end].to_vec(), path)
    }

    /// Exact number of records matching the most selective indexed
    /// conjunct of `filter` — an upper bound on the true match count,
    /// read off maintained index counters (no record is touched).
    /// `None` when no conjunct is index-backed.
    pub fn estimate_filter_matches(&self, filter: &Filter) -> Option<usize> {
        let mut conjuncts = Vec::new();
        flatten_and(filter, &mut conjuncts);
        let mut best: Option<usize> = None;
        for c in &conjuncts {
            if let Filter::Cmp { col, op, value } = c {
                let Some(ix) = self.secondary.iter().find(|ix| ix.col() == *col) else {
                    continue;
                };
                let est = match op {
                    CmpOp::Eq => Some(ix.count_eq(value)),
                    // Inclusive counts over-estimate strict bounds —
                    // fine for an upper bound.
                    CmpOp::Lt | CmpOp::Le => ix.count_range(None, Some(value)),
                    CmpOp::Gt | CmpOp::Ge => ix.count_range(Some(value), None),
                    _ => None,
                };
                if let Some(e) = est {
                    best = Some(best.map_or(e, |b| b.min(e)));
                }
            }
        }
        best
    }

    /// Record ids whose `col` equals `key` — the index-backed side of a
    /// join between this table and an external result set keyed on a
    /// typed column. Falls back to a scan when `col` is unindexed.
    pub fn join_on_column(&self, col: usize, key: &Value) -> Vec<RecordId> {
        if let Some(ix) = self.secondary.iter().find(|ix| ix.col() == col) {
            return ix.lookup_eq(key);
        }
        self.table
            .iter()
            .filter(|(_, r)| r.get(col).cmp_total(key) == std::cmp::Ordering::Equal)
            .map(|(id, _)| id)
            .collect()
    }

    /// Borrow the secondary index over `col`, when one exists.
    pub fn secondary_index(&self, col: usize) -> Option<&SecondaryIndex> {
        self.secondary.iter().find(|ix| ix.col() == col)
    }

    /// Full-text search (errors when no view is enabled).
    pub fn search(
        &self,
        query: &symphony_text::Query,
        k: usize,
    ) -> Result<Vec<TextHit>, StoreError> {
        self.fulltext
            .as_ref()
            .map(|ft| ft.search(query, k))
            .ok_or(StoreError::NoFullText)
    }

    /// Borrow the full-text view when enabled.
    pub fn fulltext(&self) -> Option<&FullTextView> {
        self.fulltext.as_ref()
    }
}

fn flatten_and<'a>(f: &'a Filter, out: &mut Vec<&'a Filter>) {
    match f {
        Filter::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

fn find_range_bounds(filter: &Filter, col: usize) -> (Option<Value>, Option<Value>) {
    let mut conjuncts = Vec::new();
    flatten_and(filter, &mut conjuncts);
    let mut low = None;
    let mut high = None;
    for c in conjuncts {
        if let Filter::Cmp { col: c, op, value } = c {
            if *c != col {
                continue;
            }
            match op {
                // Inclusive bounds: the residual filter re-checks the
                // strict variants, so widening is safe.
                CmpOp::Gt | CmpOp::Ge => low = Some(value.clone()),
                CmpOp::Lt | CmpOp::Le => high = Some(value.clone()),
                _ => {}
            }
        }
    }
    (low, high)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{FieldType, Schema};

    fn inventory() -> IndexedTable {
        let schema = Schema::of(&[
            ("title", FieldType::Text),
            ("genre", FieldType::Text),
            ("price", FieldType::Float),
        ]);
        let mut it = IndexedTable::new(Table::new("inv", schema));
        for (t, g, p) in [
            ("Galactic Raiders", "shooter", 49.99),
            ("Farm Story", "sim", 19.99),
            ("Space Trader", "sim", 29.99),
            ("Laser Golf", "sports", 9.99),
            ("Puzzle Palace", "puzzle", 14.99),
        ] {
            it.insert(Record::new(vec![
                Value::Text(t.into()),
                Value::Text(g.into()),
                Value::Float(p),
            ]));
        }
        it
    }

    #[test]
    fn create_index_backfills() {
        let mut it = inventory();
        it.create_index("genre", IndexKind::Hash).unwrap();
        let q = TableQuery::filtered(Filter::eq(1, Value::Text("sim".into())));
        assert_eq!(it.explain(&q.filter), AccessPath::IndexEq { col: 1 });
        assert_eq!(it.query(&q).len(), 2);
    }

    #[test]
    fn duplicate_index_rejected() {
        let mut it = inventory();
        it.create_index("genre", IndexKind::Hash).unwrap();
        assert_eq!(
            it.create_index("genre", IndexKind::Ordered),
            Err(StoreError::IndexExists("genre".into()))
        );
    }

    #[test]
    fn unknown_column_index_rejected() {
        let mut it = inventory();
        assert_eq!(
            it.create_index("nope", IndexKind::Hash),
            Err(StoreError::UnknownColumn("nope".into()))
        );
    }

    #[test]
    fn range_plan_on_ordered_index() {
        let mut it = inventory();
        it.create_index("price", IndexKind::Ordered).unwrap();
        let f = Filter::cmp(2, CmpOp::Ge, Value::Float(15.0)).and(Filter::cmp(
            2,
            CmpOp::Lt,
            Value::Float(40.0),
        ));
        assert_eq!(it.explain(&f), AccessPath::IndexRange { col: 2 });
        let rows = it.query(&TableQuery::filtered(f));
        let titles: Vec<String> = rows
            .iter()
            .map(|(_, r)| r.get(0).display_string())
            .collect();
        assert_eq!(titles, vec!["Farm Story", "Space Trader"]);
    }

    #[test]
    fn strict_bounds_enforced_by_residual_filter() {
        let mut it = inventory();
        it.create_index("price", IndexKind::Ordered).unwrap();
        let f = Filter::cmp(2, CmpOp::Gt, Value::Float(19.99));
        let rows = it.query(&TableQuery::filtered(f));
        assert!(rows
            .iter()
            .all(|(_, r)| matches!(r.get(2), Value::Float(p) if *p > 19.99)));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn full_scan_without_index() {
        let it = inventory();
        let f = Filter::eq(1, Value::Text("sim".into()));
        assert_eq!(it.explain(&f), AccessPath::FullScan);
        assert_eq!(it.query(&TableQuery::filtered(f)).len(), 2);
    }

    #[test]
    fn index_and_scan_agree() {
        let mut with_ix = inventory();
        with_ix.create_index("genre", IndexKind::Hash).unwrap();
        let without_ix = inventory();
        let f = Filter::eq(1, Value::Text("sim".into()));
        let a: Vec<RecordId> = with_ix
            .query(&TableQuery::filtered(f.clone()))
            .iter()
            .map(|(id, _)| *id)
            .collect();
        let b: Vec<RecordId> = without_ix
            .query(&TableQuery::filtered(f))
            .iter()
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn sort_offset_limit() {
        let it = inventory();
        let q = TableQuery {
            filter: Filter::True,
            sort: vec![(2, SortDir::Desc)],
            offset: 1,
            limit: Some(2),
        };
        let titles: Vec<String> = it
            .query(&q)
            .iter()
            .map(|(_, r)| r.get(0).display_string())
            .collect();
        assert_eq!(titles, vec!["Space Trader", "Farm Story"]);
    }

    #[test]
    fn offset_past_end_is_empty() {
        let it = inventory();
        let q = TableQuery {
            offset: 99,
            ..TableQuery::default()
        };
        assert!(it.query(&q).is_empty());
    }

    #[test]
    fn mutations_keep_indexes_consistent() {
        let mut it = inventory();
        it.create_index("genre", IndexKind::Hash).unwrap();
        it.enable_fulltext(&[("title", 1.0)]).unwrap();
        let id = it.insert(Record::new(vec![
            Value::Text("Star Farm".into()),
            Value::Text("sim".into()),
            Value::Float(5.0),
        ]));
        let sim = Filter::eq(1, Value::Text("sim".into()));
        assert_eq!(it.query(&TableQuery::filtered(sim.clone())).len(), 3);
        assert_eq!(
            it.search(&symphony_text::Query::parse("star"), 10)
                .unwrap()
                .len(),
            1
        );

        it.update(
            id,
            Record::new(vec![
                Value::Text("Star Farm".into()),
                Value::Text("strategy".into()),
                Value::Float(5.0),
            ]),
        );
        assert_eq!(it.query(&TableQuery::filtered(sim.clone())).len(), 2);

        it.delete(id);
        assert_eq!(it.query(&TableQuery::filtered(sim)).len(), 2);
        assert!(it
            .search(&symphony_text::Query::parse("star"), 10)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn maintain_fulltext_seals_and_purges_incrementally() {
        let mut it = inventory();
        assert!(it.maintain_fulltext(0).is_none(), "no view yet");
        it.enable_fulltext(&[("title", 1.0)]).unwrap();
        it.set_fulltext_policy(symphony_text::SegmentPolicy {
            memtable_max_docs: 2,
            staleness_window_ms: 100,
            merge_fanin: 4,
            near_real_time: false,
        });
        let id = it.insert(Record::new(vec![
            Value::Text("Star Farm".into()),
            Value::Text("sim".into()),
            Value::Float(5.0),
        ]));
        // The backfilled rows plus the fresh insert sit in the
        // memtable; the staleness window seals them without a rebuild.
        let r = it.maintain_fulltext(200).unwrap();
        assert!(r.sealed);
        assert_eq!(
            it.search(&symphony_text::Query::parse("star"), 10)
                .unwrap()
                .len(),
            1
        );
        it.delete(id);
        assert!(it
            .search(&symphony_text::Query::parse("star"), 10)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn search_without_fulltext_errors() {
        let it = inventory();
        assert_eq!(
            it.search(&symphony_text::Query::parse("x"), 5).unwrap_err(),
            StoreError::NoFullText
        );
    }
}
