//! Schemas and schema inference.
//!
//! Uploaded files carry no declared types, so the ingest pipeline
//! infers a [`Schema`] by sniffing every cell and widening per column:
//! `Null < Bool < Int < Float < DateTime < Url < Text`, where `Text`
//! absorbs everything.

use crate::value::Value;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FieldType {
    /// Only nulls seen (degenerate; widened to Text on use).
    Null,
    /// Boolean.
    Bool,
    /// Integer.
    Int,
    /// Float (absorbs Int).
    Float,
    /// Date/time.
    DateTime,
    /// URL.
    Url,
    /// Free text (absorbs everything).
    Text,
}

impl FieldType {
    /// The narrowest type able to represent both inputs.
    pub fn widen(self, other: FieldType) -> FieldType {
        use FieldType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Null, x) | (x, Null) => x,
            (Int, Float) | (Float, Int) => Float,
            _ => Text,
        }
    }

    /// Type of a sniffed value.
    pub fn of(value: &Value) -> FieldType {
        match value {
            Value::Null => FieldType::Null,
            Value::Bool(_) => FieldType::Bool,
            Value::Int(_) => FieldType::Int,
            Value::Float(_) => FieldType::Float,
            Value::Text(_) => FieldType::Text,
            Value::DateTime(_) => FieldType::DateTime,
            Value::Url(_) => FieldType::Url,
        }
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Column name (unique within a schema, case-sensitive).
    pub name: String,
    /// Column type.
    pub ty: FieldType,
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<FieldDef>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names — schemas come from our own
    /// ingest code, so a duplicate is a programming error.
    pub fn new(fields: Vec<FieldDef>) -> Schema {
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate column {:?}",
                f.name
            );
        }
        Schema { fields }
    }

    /// Convenience constructor from `(&str, FieldType)` pairs.
    pub fn of(cols: &[(&str, FieldType)]) -> Schema {
        Schema::new(
            cols.iter()
                .map(|(n, t)| FieldDef {
                    name: n.to_string(),
                    ty: *t,
                })
                .collect(),
        )
    }

    /// Infer a schema from raw string rows (one `Vec<&str>`-like row
    /// per record, positionally aligned with `names`). Missing cells
    /// count as nulls.
    pub fn infer(names: &[String], rows: &[Vec<String>]) -> Schema {
        let mut types = vec![FieldType::Null; names.len()];
        for row in rows {
            for (i, ty) in types.iter_mut().enumerate() {
                let raw = row.get(i).map(String::as_str).unwrap_or("");
                *ty = ty.widen(FieldType::of(&Value::sniff(raw)));
            }
        }
        Schema::new(
            names
                .iter()
                .zip(types)
                .map(|(n, ty)| FieldDef {
                    name: n.clone(),
                    ty: if ty == FieldType::Null {
                        FieldType::Text
                    } else {
                        ty
                    },
                })
                .collect(),
        )
    }

    /// Columns in declaration order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Parse a raw string into a [`Value`] of column `i`'s type,
    /// falling back to text when the raw form does not parse (data is
    /// dirty; ingest must not fail row-by-row).
    pub fn parse_cell(&self, i: usize, raw: &str) -> Value {
        let sniffed = Value::sniff(raw);
        match (self.fields[i].ty, &sniffed) {
            (FieldType::Text, Value::Null) => Value::Null,
            (FieldType::Text, _) => Value::Text(raw.trim().to_string()),
            (FieldType::Float, Value::Int(i)) => Value::Float(*i as f64),
            (want, got) if FieldType::of(got) == want || got.is_null() => sniffed,
            // Mismatch: keep the raw text rather than dropping data.
            _ => Value::Text(raw.trim().to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[&[&str]]) -> Vec<Vec<String>> {
        data.iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn widen_lattice() {
        use FieldType::*;
        assert_eq!(Int.widen(Float), Float);
        assert_eq!(Float.widen(Int), Float);
        assert_eq!(Null.widen(Int), Int);
        assert_eq!(Int.widen(Text), Text);
        assert_eq!(Bool.widen(Int), Text);
        assert_eq!(Url.widen(Url), Url);
    }

    #[test]
    fn infer_simple() {
        let names: Vec<String> = ["title", "price", "stock"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let schema = Schema::infer(
            &names,
            &rows(&[
                &["Galactic Raiders", "49.99", "12"],
                &["Farm Story", "19.99", "3"],
            ]),
        );
        assert_eq!(schema.fields()[0].ty, FieldType::Text);
        assert_eq!(schema.fields()[1].ty, FieldType::Float);
        assert_eq!(schema.fields()[2].ty, FieldType::Int);
    }

    #[test]
    fn infer_widens_int_to_float_and_mixed_to_text() {
        let names: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let schema = Schema::infer(&names, &rows(&[&["1", "1"], &["2.5", "x"]]));
        assert_eq!(schema.fields()[0].ty, FieldType::Float);
        assert_eq!(schema.fields()[1].ty, FieldType::Text);
    }

    #[test]
    fn infer_nulls_ignored_then_default_text() {
        let names: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let schema = Schema::infer(&names, &rows(&[&["", "5"], &["", ""]]));
        assert_eq!(schema.fields()[0].ty, FieldType::Text); // all-null column
        assert_eq!(schema.fields()[1].ty, FieldType::Int);
    }

    #[test]
    fn infer_handles_short_rows() {
        let names: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let schema = Schema::infer(&names, &rows(&[&["1"]]));
        assert_eq!(schema.len(), 2);
    }

    #[test]
    fn parse_cell_respects_declared_type() {
        let schema = Schema::of(&[("sku", FieldType::Text), ("price", FieldType::Float)]);
        // "42" would sniff as Int, but the column is Text.
        assert_eq!(schema.parse_cell(0, "42"), Value::Text("42".into()));
        assert_eq!(schema.parse_cell(1, "42"), Value::Float(42.0));
        assert_eq!(schema.parse_cell(1, "49.99"), Value::Float(49.99));
    }

    #[test]
    fn parse_cell_dirty_data_falls_back_to_text() {
        let schema = Schema::of(&[("price", FieldType::Float)]);
        assert_eq!(schema.parse_cell(0, "n/a"), Value::Text("n/a".into()));
        assert_eq!(schema.parse_cell(0, ""), Value::Null);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        Schema::of(&[("a", FieldType::Int), ("a", FieldType::Int)]);
    }

    #[test]
    fn col_lookup() {
        let schema = Schema::of(&[("x", FieldType::Int), ("y", FieldType::Text)]);
        assert_eq!(schema.col("y"), Some(1));
        assert_eq!(schema.col("z"), None);
    }
}
