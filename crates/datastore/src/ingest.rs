//! The ingestion pipeline.
//!
//! Paper §II-A, "Proprietary Data": *"It supports a variety of upload
//! methods (e.g., HTTP/FTP file upload, RSS feeds, or URL crawling),
//! as well as a variety of structured data formats (e.g., delimited
//! files, Excel files, and XML)."* This module implements exactly that
//! surface: a format registry, upload methods over byte payloads, RSS
//! ingestion, and a breadth-first crawler driven through the
//! [`PageFetcher`] trait (implemented by the synthetic web in
//! `symphony-web`).

use crate::error::StoreError;
use crate::formats::{csv, json, rss, worksheet, xml};
use crate::schema::Schema;
use crate::table::Table;

/// Structured data formats the pipeline understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataFormat {
    /// Comma-separated values with a header row.
    Csv,
    /// Tab-separated values with a header row.
    Tsv,
    /// XML with repeated row elements.
    Xml,
    /// JSON array of objects (or `{"...": [...]}` envelope).
    Json,
    /// RSS 2.0 feed.
    Rss,
    /// Worksheet dialect (the Excel stand-in, see
    /// [`formats::worksheet`](crate::formats::worksheet)).
    Worksheet,
}

impl DataFormat {
    /// Guess a format from a file name's extension.
    pub fn from_filename(name: &str) -> Option<DataFormat> {
        let ext = name.rsplit('.').next()?.to_lowercase();
        match ext.as_str() {
            "csv" | "txt" => Some(DataFormat::Csv),
            "tsv" => Some(DataFormat::Tsv),
            "xml" => Some(DataFormat::Xml),
            "json" => Some(DataFormat::Json),
            "rss" => Some(DataFormat::Rss),
            "xls" | "xlsx" | "ws" => Some(DataFormat::Worksheet),
            _ => None,
        }
    }
}

impl std::fmt::Display for DataFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataFormat::Csv => "csv",
            DataFormat::Tsv => "tsv",
            DataFormat::Xml => "xml",
            DataFormat::Json => "json",
            DataFormat::Rss => "rss",
            DataFormat::Worksheet => "worksheet",
        };
        f.write_str(s)
    }
}

/// How the bytes arrived. HTTP and FTP uploads carry the payload
/// directly (the transfer itself is outside the reproduction's scope);
/// RSS and crawling fetch through the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UploadMethod {
    /// HTTP file upload.
    Http {
        /// Uploaded file name (used for format guessing).
        filename: String,
    },
    /// FTP file upload.
    Ftp {
        /// Uploaded file name (used for format guessing).
        filename: String,
    },
    /// Subscribe to an RSS feed URL.
    RssFeed {
        /// Feed URL.
        url: String,
    },
    /// Breadth-first crawl from a seed URL.
    UrlCrawl {
        /// Seed URL.
        seed: String,
        /// Page budget.
        max_pages: usize,
    },
}

/// Summary of one ingestion run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Format that was parsed.
    pub format: DataFormat,
    /// Rows stored.
    pub rows: usize,
    /// Rows or sheets skipped (with reasons).
    pub warnings: Vec<String>,
}

/// Parsed upload: `(column names, string rows, warnings)`.
pub type ParsedContent = (Vec<String>, Vec<Vec<String>>, Vec<String>);

/// Parse `content` in `format` into `(names, rows, warnings)`.
pub fn parse_content(content: &str, format: DataFormat) -> Result<ParsedContent, StoreError> {
    let mut warnings = Vec::new();
    let (names, rows) = match format {
        DataFormat::Csv => {
            let d = csv::parse_delimited(content, ',')?;
            (d.names, d.rows)
        }
        DataFormat::Tsv => {
            let d = csv::parse_delimited(content, '\t')?;
            (d.names, d.rows)
        }
        DataFormat::Xml => xml::records(&xml::parse(content)?)?,
        DataFormat::Json => json::records(&json::parse(content)?)?,
        DataFormat::Rss => rss::records(&rss::parse_feed(content)?),
        DataFormat::Worksheet => {
            let ws = worksheet::parse_worksheet(content)?;
            for s in ws.skipped_sheets {
                warnings.push(format!("skipped sheet with mismatched header: {s}"));
            }
            (ws.data.names, ws.data.rows)
        }
    };
    Ok((names, rows, warnings))
}

/// Build a typed table named `table_name` from `content`: parse, infer
/// the schema, and load every row.
pub fn ingest(
    table_name: &str,
    content: &str,
    format: DataFormat,
) -> Result<(Table, IngestReport), StoreError> {
    let (names, rows, warnings) = parse_content(content, format)?;
    let schema = Schema::infer(&names, &rows);
    let mut table = Table::new(table_name, schema);
    for row in &rows {
        table.insert_raw(row);
    }
    let report = IngestReport {
        format,
        rows: table.len(),
        warnings,
    };
    Ok((table, report))
}

/// Ingest via an [`UploadMethod`]. File uploads guess the format from
/// the file name (falling back to `fallback` when the extension is
/// unknown); feed/crawl methods fetch through `fetcher`.
pub fn ingest_upload(
    table_name: &str,
    method: &UploadMethod,
    payload: Option<&str>,
    fallback: Option<DataFormat>,
    fetcher: Option<&dyn PageFetcher>,
) -> Result<(Table, IngestReport), StoreError> {
    match method {
        UploadMethod::Http { filename } | UploadMethod::Ftp { filename } => {
            let format = DataFormat::from_filename(filename)
                .or(fallback)
                .ok_or_else(|| StoreError::UnsupportedFormat(filename.clone()))?;
            let content = payload
                .ok_or_else(|| StoreError::Parse("file upload requires a payload".into()))?;
            ingest(table_name, content, format)
        }
        UploadMethod::RssFeed { url } => {
            let fetcher =
                fetcher.ok_or_else(|| StoreError::Parse("rss feed requires a fetcher".into()))?;
            let page = fetcher
                .fetch(url)
                .ok_or_else(|| StoreError::Parse(format!("feed not reachable: {url}")))?;
            ingest(table_name, &page.body, DataFormat::Rss)
        }
        UploadMethod::UrlCrawl { seed, max_pages } => {
            let fetcher =
                fetcher.ok_or_else(|| StoreError::Parse("crawl requires a fetcher".into()))?;
            Ok(crawl(table_name, seed, *max_pages, fetcher))
        }
    }
}

/// A fetched page, as the crawler sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchedPage {
    /// Final URL.
    pub url: String,
    /// Page title.
    pub title: String,
    /// Page body text (or raw feed XML for feed URLs).
    pub body: String,
    /// Outgoing links.
    pub links: Vec<String>,
}

/// Source of pages for the crawler. `symphony-web` implements this
/// over the synthetic corpus; tests implement it over fixtures.
pub trait PageFetcher {
    /// Fetch one URL; `None` means unreachable/404.
    fn fetch(&self, url: &str) -> Option<FetchedPage>;
}

/// Breadth-first crawl from `seed`, visiting at most `max_pages`
/// pages, producing a `url,title,body` table.
pub fn crawl(
    table_name: &str,
    seed: &str,
    max_pages: usize,
    fetcher: &dyn PageFetcher,
) -> (Table, IngestReport) {
    use crate::schema::{FieldDef, FieldType};
    let schema = Schema::new(vec![
        FieldDef {
            name: "url".into(),
            ty: FieldType::Url,
        },
        FieldDef {
            name: "title".into(),
            ty: FieldType::Text,
        },
        FieldDef {
            name: "body".into(),
            ty: FieldType::Text,
        },
    ]);
    let mut table = Table::new(table_name, schema);
    let mut warnings = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(seed.to_string());
    seen.insert(seed.to_string());
    while let Some(url) = queue.pop_front() {
        if table.len() >= max_pages {
            warnings.push(format!("page budget {max_pages} reached"));
            break;
        }
        let Some(page) = fetcher.fetch(&url) else {
            warnings.push(format!("unreachable: {url}"));
            continue;
        };
        table.insert(crate::table::Record::new(vec![
            crate::value::Value::Url(page.url.clone()),
            crate::value::Value::Text(page.title),
            crate::value::Value::Text(page.body),
        ]));
        for link in page.links {
            if seen.insert(link.clone()) {
                queue.push_back(link);
            }
        }
    }
    let rows = table.len();
    (
        table,
        IngestReport {
            format: DataFormat::Xml, // crawling has no file format; reported as markup
            rows,
            warnings,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldType;

    #[test]
    fn format_guessing() {
        assert_eq!(DataFormat::from_filename("inv.csv"), Some(DataFormat::Csv));
        assert_eq!(
            DataFormat::from_filename("inv.XLS"),
            Some(DataFormat::Worksheet)
        );
        assert_eq!(DataFormat::from_filename("inv.pdf"), None);
    }

    #[test]
    fn ingest_csv_infers_schema() {
        let (table, report) = ingest(
            "inv",
            "title,price\nGalactic Raiders,49.99\nFarm Story,19.99\n",
            DataFormat::Csv,
        )
        .unwrap();
        assert_eq!(report.rows, 2);
        assert_eq!(table.schema().fields()[1].ty, FieldType::Float);
    }

    #[test]
    fn ingest_json() {
        let (table, _) = ingest(
            "inv",
            r#"[{"title":"A","stock":3},{"title":"B","stock":5}]"#,
            DataFormat::Json,
        )
        .unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.schema().fields()[1].ty, FieldType::Int);
    }

    #[test]
    fn ingest_xml() {
        let (table, _) = ingest(
            "inv",
            "<inv><g><t>A</t><p>1.5</p></g><g><t>B</t><p>2.5</p></g></inv>",
            DataFormat::Xml,
        )
        .unwrap();
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn upload_http_guesses_from_filename() {
        let method = UploadMethod::Http {
            filename: "games.csv".into(),
        };
        let (table, _) = ingest_upload("inv", &method, Some("t,p\nA,1\n"), None, None).unwrap();
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn upload_unknown_extension_needs_fallback() {
        let method = UploadMethod::Ftp {
            filename: "games.dat".into(),
        };
        assert!(matches!(
            ingest_upload("inv", &method, Some("t\nA\n"), None, None),
            Err(StoreError::UnsupportedFormat(_))
        ));
        let ok = ingest_upload("inv", &method, Some("t\nA\n"), Some(DataFormat::Csv), None);
        assert!(ok.is_ok());
    }

    struct FixtureWeb;
    impl PageFetcher for FixtureWeb {
        fn fetch(&self, url: &str) -> Option<FetchedPage> {
            match url {
                "http://a" => Some(FetchedPage {
                    url: url.into(),
                    title: "A".into(),
                    body: "root page".into(),
                    links: vec!["http://b".into(), "http://c".into(), "http://a".into()],
                }),
                "http://b" => Some(FetchedPage {
                    url: url.into(),
                    title: "B".into(),
                    body: "leaf".into(),
                    links: vec![],
                }),
                _ => None,
            }
        }
    }

    #[test]
    fn crawl_bfs_dedupes_and_reports_unreachable() {
        let (table, report) = crawl("pages", "http://a", 10, &FixtureWeb);
        assert_eq!(table.len(), 2); // a and b; c unreachable
        assert!(report.warnings.iter().any(|w| w.contains("http://c")));
    }

    #[test]
    fn crawl_respects_budget() {
        let (table, report) = crawl("pages", "http://a", 1, &FixtureWeb);
        assert_eq!(table.len(), 1);
        assert!(report.warnings.iter().any(|w| w.contains("budget")));
    }

    #[test]
    fn rss_upload_via_fetcher() {
        struct FeedHost;
        impl PageFetcher for FeedHost {
            fn fetch(&self, url: &str) -> Option<FetchedPage> {
                (url == "http://feed").then(|| FetchedPage {
                    url: url.into(),
                    title: String::new(),
                    body: "<rss><channel><title>F</title>\
                           <item><title>X</title><link>http://x</link></item>\
                           </channel></rss>"
                        .into(),
                    links: vec![],
                })
            }
        }
        let method = UploadMethod::RssFeed {
            url: "http://feed".into(),
        };
        let (table, report) = ingest_upload("feed", &method, None, None, Some(&FeedHost)).unwrap();
        assert_eq!(report.rows, 1);
        assert_eq!(
            table.cell(crate::table::RecordId(0), "title").unwrap(),
            &crate::value::Value::Text("X".into())
        );
    }
}
