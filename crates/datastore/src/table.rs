//! Tables and records.

use crate::schema::Schema;
use crate::value::Value;

/// Identifier of a record within one [`Table`]. Dense, never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u32);

impl RecordId {
    /// As a usize for slot indexing.
    #[inline]
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

/// One row, positionally aligned with the table's [`Schema`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Build a record from values (must match the schema width when
    /// inserted; [`Table::insert`] enforces it).
    pub fn new(values: Vec<Value>) -> Record {
        Record { values }
    }

    /// Cell by column index.
    pub fn get(&self, col: usize) -> &Value {
        &self.values[col]
    }

    /// All cells.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Replace one cell.
    pub fn set(&mut self, col: usize, value: Value) {
        self.values[col] = value;
    }
}

/// An in-memory table: schema + slotted rows. Deletion leaves a
/// tombstoned slot so [`RecordId`]s stay stable (secondary indexes and
/// the full-text index reference them).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    slots: Vec<Option<Record>>,
    live: usize,
    /// Bumped on every mutation; searchable wrappers use it to detect
    /// staleness.
    version: u64,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            schema,
            slots: Vec::new(),
            live: 0,
            version: 0,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Monotonic mutation counter.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Insert a record, returning its id.
    ///
    /// # Panics
    /// Panics when the record width differs from the schema width —
    /// rows are produced by our own parsers, which pad/truncate first.
    pub fn insert(&mut self, record: Record) -> RecordId {
        assert_eq!(
            record.values.len(),
            self.schema.len(),
            "record width {} != schema width {} in table {:?}",
            record.values.len(),
            self.schema.len(),
            self.name
        );
        let id = RecordId(self.slots.len() as u32);
        self.slots.push(Some(record));
        self.live += 1;
        self.version += 1;
        id
    }

    /// Insert from raw strings, parsing each cell against the schema.
    /// Short rows are padded with nulls; long rows are truncated.
    pub fn insert_raw(&mut self, raw: &[String]) -> RecordId {
        let values: Vec<Value> = (0..self.schema.len())
            .map(|i| {
                raw.get(i)
                    .map(|s| self.schema.parse_cell(i, s))
                    .unwrap_or(Value::Null)
            })
            .collect();
        self.insert(Record::new(values))
    }

    /// Fetch a live record.
    pub fn get(&self, id: RecordId) -> Option<&Record> {
        self.slots.get(id.as_usize()).and_then(|s| s.as_ref())
    }

    /// Delete a record; returns the old record if it was live.
    pub fn delete(&mut self, id: RecordId) -> Option<Record> {
        let slot = self.slots.get_mut(id.as_usize())?;
        let old = slot.take();
        if old.is_some() {
            self.live -= 1;
            self.version += 1;
        }
        old
    }

    /// Replace a live record in place; returns the old record.
    pub fn update(&mut self, id: RecordId, record: Record) -> Option<Record> {
        assert_eq!(record.values.len(), self.schema.len());
        let slot = self.slots.get_mut(id.as_usize())?;
        if slot.is_none() {
            return None;
        }
        self.version += 1;
        slot.replace(record)
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live records exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate live records with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &Record)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (RecordId(i as u32), r)))
    }

    /// Cell access by column name (convenience for bindings).
    pub fn cell(&self, id: RecordId, col_name: &str) -> Option<&Value> {
        let col = self.schema.col(col_name)?;
        self.get(id).map(|r| r.get(col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldType;

    fn table() -> Table {
        let schema = Schema::of(&[
            ("title", FieldType::Text),
            ("price", FieldType::Float),
            ("stock", FieldType::Int),
        ]);
        Table::new("inventory", schema)
    }

    fn row(t: &str, p: f64, s: i64) -> Record {
        Record::new(vec![Value::Text(t.into()), Value::Float(p), Value::Int(s)])
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = table();
        let id = t.insert(row("Galactic Raiders", 49.99, 10));
        assert_eq!(
            t.get(id).unwrap().get(0),
            &Value::Text("Galactic Raiders".into())
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_stable_across_deletes() {
        let mut t = table();
        let a = t.insert(row("A", 1.0, 1));
        let b = t.insert(row("B", 2.0, 2));
        assert!(t.delete(a).is_some());
        assert_eq!(t.get(b).unwrap().get(0), &Value::Text("B".into()));
        assert!(t.get(a).is_none());
        let c = t.insert(row("C", 3.0, 3));
        assert_eq!(c, RecordId(2), "slots are never reused");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn double_delete_is_none() {
        let mut t = table();
        let a = t.insert(row("A", 1.0, 1));
        assert!(t.delete(a).is_some());
        assert!(t.delete(a).is_none());
    }

    #[test]
    fn update_replaces_live_only() {
        let mut t = table();
        let a = t.insert(row("A", 1.0, 1));
        let old = t.update(a, row("A2", 1.5, 2)).unwrap();
        assert_eq!(old.get(0), &Value::Text("A".into()));
        assert_eq!(t.get(a).unwrap().get(0), &Value::Text("A2".into()));
        t.delete(a);
        assert!(t.update(a, row("A3", 9.0, 9)).is_none());
    }

    #[test]
    fn version_bumps_on_mutation_only() {
        let mut t = table();
        let v0 = t.version();
        let a = t.insert(row("A", 1.0, 1));
        assert!(t.version() > v0);
        let v1 = t.version();
        t.get(a);
        assert_eq!(t.version(), v1);
        t.delete(a);
        assert!(t.version() > v1);
    }

    #[test]
    fn insert_raw_parses_pads_and_truncates() {
        let mut t = table();
        let id = t.insert_raw(&["X".into(), "9.5".into()]);
        let r = t.get(id).unwrap();
        assert_eq!(r.get(1), &Value::Float(9.5));
        assert_eq!(r.get(2), &Value::Null);
        let id2 = t.insert_raw(&["Y".into(), "1".into(), "2".into(), "extra".into()]);
        assert_eq!(t.get(id2).unwrap().values().len(), 3);
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut t = table();
        let a = t.insert(row("A", 1.0, 1));
        t.insert(row("B", 2.0, 2));
        t.delete(a);
        let names: Vec<String> = t.iter().map(|(_, r)| r.get(0).display_string()).collect();
        assert_eq!(names, vec!["B"]);
    }

    #[test]
    fn cell_by_name() {
        let mut t = table();
        let id = t.insert(row("A", 1.0, 7));
        assert_eq!(t.cell(id, "stock"), Some(&Value::Int(7)));
        assert_eq!(t.cell(id, "missing"), None);
    }

    #[test]
    #[should_panic(expected = "record width")]
    fn wrong_width_panics() {
        let mut t = table();
        t.insert(Record::new(vec![Value::Int(1)]));
    }
}
