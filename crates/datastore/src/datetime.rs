//! Minimal civil-date <-> Unix-epoch conversion.
//!
//! The store only needs to parse `YYYY-MM-DD` and
//! `YYYY-MM-DD HH:MM[:SS]` (plus the RFC-822 dates used by RSS
//! `pubDate`) into epoch seconds and format them back; pulling in a
//! full chrono dependency for that would violate the dependency budget
//! in DESIGN.md. The day<->civil algorithms are Howard Hinnant's
//! well-known branchless ones.

/// Days from civil date (proleptic Gregorian) to days since 1970-01-01.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = ((m + 9) % 12) as u64; // [0, 11]
    let doy = (153 * mp + 2) / 5 + (d as u64 - 1); // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i64 - 719468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parse `YYYY-MM-DD`, `YYYY-MM-DD HH:MM`, `YYYY-MM-DDTHH:MM:SS`, or an
/// RFC-822-style `03 Nov 2009 12:30:00` (weekday prefix and zone suffix
/// tolerated) into epoch seconds. Returns `None` for anything else.
pub fn parse_datetime(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(epoch) = parse_iso(s) {
        return Some(epoch);
    }
    parse_rfc822(s)
}

fn parse_iso(s: &str) -> Option<i64> {
    let bytes = s.as_bytes();
    if bytes.len() < 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let y: i64 = s.get(0..4)?.parse().ok()?;
    let m: u32 = s.get(5..7)?.parse().ok()?;
    let d: u32 = s.get(8..10)?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let mut secs = days_from_civil(y, m, d) * 86_400;
    if bytes.len() > 10 {
        if bytes[10] != b' ' && bytes[10] != b'T' {
            return None;
        }
        let time = &s[11..];
        let (h, min, sec) = parse_hms(time)?;
        secs += (h as i64) * 3600 + (min as i64) * 60 + sec as i64;
    }
    Some(secs)
}

fn parse_hms(time: &str) -> Option<(u32, u32, u32)> {
    let mut parts = time.splitn(3, ':');
    let h: u32 = parts.next()?.trim().parse().ok()?;
    let m: u32 = parts.next()?.trim().parse().ok()?;
    let sec: u32 = match parts.next() {
        Some(p) => p
            .trim()
            .trim_end_matches(|c: char| !c.is_ascii_digit())
            .parse()
            .unwrap_or(0),
        None => 0,
    };
    if h > 23 || m > 59 || sec > 60 {
        return None;
    }
    Some((h, m, sec))
}

const MONTHS: [&str; 12] = [
    "jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov", "dec",
];

fn parse_rfc822(s: &str) -> Option<i64> {
    // Strip optional leading weekday ("Tue, ").
    let s = match s.find(',') {
        Some(i) => s[i + 1..].trim(),
        None => s,
    };
    let mut parts = s.split_whitespace();
    let d: u32 = parts.next()?.parse().ok()?;
    let mon = parts.next()?.to_lowercase();
    let mon3 = mon.get(0..3)?;
    let m = MONTHS.iter().position(|&x| x == mon3)? as u32 + 1;
    let y: i64 = parts.next()?.parse().ok()?;
    let y = if y < 100 { y + 2000 } else { y };
    let mut secs = days_from_civil(y, m, d) * 86_400;
    if let Some(time) = parts.next() {
        if let Some((h, min, sec)) = parse_hms(time) {
            secs += (h as i64) * 3600 + (min as i64) * 60 + sec as i64;
        }
    }
    // Time zone suffix (e.g. GMT, +0000) is ignored: the synthetic
    // platform operates in UTC throughout.
    Some(secs)
}

/// Format epoch seconds as `YYYY-MM-DD HH:MM:SS` (UTC), or just the
/// date when the time-of-day is midnight.
pub fn format_epoch(epoch: i64) -> String {
    let days = epoch.div_euclid(86_400);
    let rem = epoch.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    if rem == 0 {
        format!("{y:04}-{m:02}-{d:02}")
    } else {
        let h = rem / 3600;
        let min = (rem % 3600) / 60;
        let s = rem % 60;
        format!("{y:04}-{m:02}-{d:02} {h:02}:{min:02}:{s:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero_day() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn civil_roundtrip_across_leap_years() {
        for &(y, m, d) in &[
            (2000, 2, 29),
            (2009, 11, 3),
            (2010, 3, 1),
            (1999, 12, 31),
            (2024, 2, 29),
            (1969, 7, 20),
        ] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d), "for {y}-{m}-{d}");
        }
    }

    #[test]
    fn parse_iso_date() {
        assert_eq!(parse_datetime("1970-01-02"), Some(86_400));
        assert_eq!(parse_datetime("1970-01-01 00:01"), Some(60));
        assert_eq!(parse_datetime("1970-01-01T00:00:05"), Some(5));
    }

    #[test]
    fn parse_rfc822_date() {
        // RSS pubDate style.
        let got = parse_datetime("Tue, 03 Nov 2009 12:30:00 GMT").unwrap();
        let want = days_from_civil(2009, 11, 3) * 86_400 + 12 * 3600 + 30 * 60;
        assert_eq!(got, want);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse_datetime("not a date"), None);
        assert_eq!(parse_datetime("2009-13-01"), None);
        assert_eq!(parse_datetime("2009-00-01"), None);
        assert_eq!(parse_datetime("20091103"), None);
    }

    #[test]
    fn format_roundtrip() {
        let e = parse_datetime("2009-11-03 12:30:00").unwrap();
        assert_eq!(format_epoch(e), "2009-11-03 12:30:00");
        let d = parse_datetime("2009-11-03").unwrap();
        assert_eq!(format_epoch(d), "2009-11-03");
    }

    #[test]
    fn negative_epochs_format() {
        let e = days_from_civil(1969, 12, 31) * 86_400;
        assert_eq!(format_epoch(e), "1969-12-31");
    }
}
