//! Aggregation queries: grouped COUNT / SUM / AVG / MIN / MAX.
//!
//! Part of the "richer querying of structured data" the paper lists as
//! future work (§IV); designers use it for dashboards over their
//! proprietary tables (inventory by genre, average price per region)
//! and the platform uses the same machinery for analytics exports.

use crate::error::StoreError;
use crate::filter::Filter;
use crate::indexed::IndexedTable;
use crate::indexes::OrdValue;
use crate::value::Value;
use std::collections::BTreeMap;

/// One aggregate function over a named column (except `Count`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aggregate {
    /// Row count.
    Count,
    /// Numeric sum (nulls and non-numerics skipped).
    Sum(String),
    /// Numeric mean (nulls and non-numerics skipped; null when no
    /// numeric input).
    Avg(String),
    /// Minimum by total value order.
    Min(String),
    /// Maximum by total value order.
    Max(String),
}

impl Aggregate {
    fn column(&self) -> Option<&str> {
        match self {
            Aggregate::Count => None,
            Aggregate::Sum(c) | Aggregate::Avg(c) | Aggregate::Min(c) | Aggregate::Max(c) => {
                Some(c)
            }
        }
    }
}

/// One output row of an aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Group key (`None` for the global group).
    pub key: Option<Value>,
    /// One value per requested aggregate, in request order.
    pub values: Vec<Value>,
}

#[derive(Debug, Default)]
struct Accumulator {
    count: u64,
    sum: f64,
    numeric_count: u64,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    fn feed(&mut self, v: &Value) {
        self.count += 1;
        match v {
            Value::Int(i) => {
                self.sum += *i as f64;
                self.numeric_count += 1;
            }
            Value::Float(f) => {
                self.sum += f;
                self.numeric_count += 1;
            }
            _ => {}
        }
        if !v.is_null() {
            let better_min = self
                .min
                .as_ref()
                .map(|m| v.cmp_total(m) == std::cmp::Ordering::Less)
                .unwrap_or(true);
            if better_min {
                self.min = Some(v.clone());
            }
            let better_max = self
                .max
                .as_ref()
                .map(|m| v.cmp_total(m) == std::cmp::Ordering::Greater)
                .unwrap_or(true);
            if better_max {
                self.max = Some(v.clone());
            }
        }
    }
}

/// Run a grouped aggregation over an [`IndexedTable`].
///
/// * `filter` — rows considered (uses the same planner as
///   [`IndexedTable::query`]).
/// * `group_by` — optional column name; `None` produces one global
///   row.
/// * `aggs` — the aggregates to compute per group.
///
/// Groups are returned in ascending key order (total value order).
pub fn aggregate(
    table: &IndexedTable,
    filter: &Filter,
    group_by: Option<&str>,
    aggs: &[Aggregate],
) -> Result<Vec<GroupRow>, StoreError> {
    let schema = table.table().schema();
    let group_col = match group_by {
        Some(name) => Some(
            schema
                .col(name)
                .ok_or_else(|| StoreError::UnknownColumn(name.to_string()))?,
        ),
        None => None,
    };
    let agg_cols: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match a.column() {
            Some(name) => schema
                .col(name)
                .map(Some)
                .ok_or_else(|| StoreError::UnknownColumn(name.to_string())),
            None => Ok(None),
        })
        .collect::<Result<_, _>>()?;

    // One accumulator per (group, aggregate).
    let mut groups: BTreeMap<Option<OrdValue>, Vec<Accumulator>> = BTreeMap::new();
    let rows = table.query(&crate::indexed::TableQuery::filtered(filter.clone()));
    for (_, record) in rows {
        let key = group_col.map(|c| OrdValue(record.get(c).clone()));
        let accs = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|_| Accumulator::default()).collect());
        for (acc, col) in accs.iter_mut().zip(&agg_cols) {
            match col {
                Some(c) => acc.feed(record.get(*c)),
                None => acc.count += 1,
            }
        }
    }
    // Global aggregation over zero rows still yields one row.
    if group_col.is_none() && groups.is_empty() {
        groups.insert(None, aggs.iter().map(|_| Accumulator::default()).collect());
    }

    Ok(groups
        .into_iter()
        .map(|(key, accs)| GroupRow {
            key: key.map(|k| k.0),
            values: aggs
                .iter()
                .zip(accs)
                .map(|(agg, acc)| match agg {
                    Aggregate::Count => Value::Int(acc.count as i64),
                    Aggregate::Sum(_) => {
                        if acc.numeric_count == 0 {
                            Value::Null
                        } else {
                            Value::Float(acc.sum)
                        }
                    }
                    Aggregate::Avg(_) => {
                        if acc.numeric_count == 0 {
                            Value::Null
                        } else {
                            Value::Float(acc.sum / acc.numeric_count as f64)
                        }
                    }
                    Aggregate::Min(_) => acc.min.unwrap_or(Value::Null),
                    Aggregate::Max(_) => acc.max.unwrap_or(Value::Null),
                })
                .collect(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::CmpOp;
    use crate::schema::{FieldType, Schema};
    use crate::table::{Record, Table};

    fn inventory() -> IndexedTable {
        let schema = Schema::of(&[
            ("title", FieldType::Text),
            ("genre", FieldType::Text),
            ("price", FieldType::Float),
            ("stock", FieldType::Int),
        ]);
        let mut t = IndexedTable::new(Table::new("inv", schema));
        for (title, genre, price, stock) in [
            ("Galactic Raiders", "shooter", 49.99, 3),
            ("Laser Golf", "sports", 9.99, 0),
            ("Farm Story", "sim", 19.99, 7),
            ("Space Trader", "sim", 29.99, 2),
            ("Puzzle Palace", "puzzle", 14.99, 5),
        ] {
            t.insert(Record::new(vec![
                Value::Text(title.into()),
                Value::Text(genre.into()),
                Value::Float(price),
                Value::Int(stock),
            ]));
        }
        t
    }

    #[test]
    fn global_aggregates() {
        let t = inventory();
        let rows = aggregate(
            &t,
            &Filter::True,
            None,
            &[
                Aggregate::Count,
                Aggregate::Sum("price".into()),
                Aggregate::Avg("stock".into()),
                Aggregate::Min("price".into()),
                Aggregate::Max("price".into()),
            ],
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.key, None);
        assert_eq!(r.values[0], Value::Int(5));
        assert!(matches!(r.values[1], Value::Float(s) if (s - 124.95).abs() < 1e-9));
        assert!(matches!(r.values[2], Value::Float(a) if (a - 3.4).abs() < 1e-9));
        assert_eq!(r.values[3], Value::Float(9.99));
        assert_eq!(r.values[4], Value::Float(49.99));
    }

    #[test]
    fn group_by_genre_ordered_by_key() {
        let t = inventory();
        let rows = aggregate(
            &t,
            &Filter::True,
            Some("genre"),
            &[Aggregate::Count, Aggregate::Sum("price".into())],
        )
        .unwrap();
        let keys: Vec<String> = rows
            .iter()
            .map(|r| r.key.as_ref().unwrap().display_string())
            .collect();
        assert_eq!(keys, vec!["puzzle", "shooter", "sim", "sports"]);
        let sim = rows
            .iter()
            .find(|r| r.key == Some(Value::Text("sim".into())))
            .unwrap();
        assert_eq!(sim.values[0], Value::Int(2));
        assert!(matches!(sim.values[1], Value::Float(s) if (s - 49.98).abs() < 1e-9));
    }

    #[test]
    fn filter_applies_before_grouping() {
        let t = inventory();
        let in_stock = Filter::cmp(3, CmpOp::Gt, Value::Int(0));
        let rows = aggregate(&t, &in_stock, Some("genre"), &[Aggregate::Count]).unwrap();
        // sports (stock 0) disappears entirely.
        assert!(rows
            .iter()
            .all(|r| r.key != Some(Value::Text("sports".into()))));
    }

    #[test]
    fn empty_input_global_row() {
        let t = inventory();
        let none = Filter::cmp(2, CmpOp::Gt, Value::Float(1000.0));
        let rows = aggregate(
            &t,
            &none,
            None,
            &[
                Aggregate::Count,
                Aggregate::Sum("price".into()),
                Aggregate::Min("price".into()),
            ],
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[0], Value::Int(0));
        assert_eq!(rows[0].values[1], Value::Null);
        assert_eq!(rows[0].values[2], Value::Null);
        // Grouped over empty input: no rows at all.
        let grouped = aggregate(&t, &none, Some("genre"), &[Aggregate::Count]).unwrap();
        assert!(grouped.is_empty());
    }

    #[test]
    fn unknown_columns_error() {
        let t = inventory();
        assert_eq!(
            aggregate(&t, &Filter::True, Some("nope"), &[Aggregate::Count]).unwrap_err(),
            StoreError::UnknownColumn("nope".into())
        );
        assert_eq!(
            aggregate(&t, &Filter::True, None, &[Aggregate::Sum("nope".into())]).unwrap_err(),
            StoreError::UnknownColumn("nope".into())
        );
    }

    #[test]
    fn sum_over_text_column_is_null() {
        let t = inventory();
        let rows = aggregate(&t, &Filter::True, None, &[Aggregate::Sum("title".into())]).unwrap();
        assert_eq!(rows[0].values[0], Value::Null);
        // But min/max still work via total order.
        let rows = aggregate(&t, &Filter::True, None, &[Aggregate::Min("title".into())]).unwrap();
        assert_eq!(rows[0].values[0], Value::Text("Farm Story".into()));
    }
}
