//! Secondary indexes: hash (point lookups) and ordered (ranges).

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};

use crate::table::RecordId;
use crate::value::{Value, ValueKey};

/// [`Value`] wrapper whose `Ord` is [`Value::cmp_total`], so it can key
/// a `BTreeMap`.
#[derive(Debug, Clone)]
pub struct OrdValue(pub Value);

impl PartialEq for OrdValue {
    fn eq(&self, other: &Self) -> bool {
        self.0.cmp_total(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for OrdValue {}
impl PartialOrd for OrdValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp_total(&other.0)
    }
}

/// Which index structure backs a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash index: O(1) equality.
    Hash,
    /// Ordered index: equality + ranges.
    Ordered,
}

/// A secondary index over one column.
#[derive(Debug)]
pub enum SecondaryIndex {
    /// Hash-backed.
    Hash {
        /// Indexed column.
        col: usize,
        /// Value -> record ids (insertion-ordered).
        map: HashMap<ValueKey, Vec<RecordId>>,
        /// Total entries across all keys (maintained, O(1) to read).
        len: usize,
    },
    /// Ordered (B-tree-backed).
    Ordered {
        /// Indexed column.
        col: usize,
        /// Value -> record ids (insertion-ordered).
        map: BTreeMap<OrdValue, Vec<RecordId>>,
        /// Total entries across all keys (maintained, O(1) to read).
        len: usize,
    },
}

impl SecondaryIndex {
    /// Create an empty index of `kind` over `col`.
    pub fn new(kind: IndexKind, col: usize) -> SecondaryIndex {
        match kind {
            IndexKind::Hash => SecondaryIndex::Hash {
                col,
                map: HashMap::new(),
                len: 0,
            },
            IndexKind::Ordered => SecondaryIndex::Ordered {
                col,
                map: BTreeMap::new(),
                len: 0,
            },
        }
    }

    /// Indexed column.
    pub fn col(&self) -> usize {
        match self {
            SecondaryIndex::Hash { col, .. } | SecondaryIndex::Ordered { col, .. } => *col,
        }
    }

    /// The structure kind.
    pub fn kind(&self) -> IndexKind {
        match self {
            SecondaryIndex::Hash { .. } => IndexKind::Hash,
            SecondaryIndex::Ordered { .. } => IndexKind::Ordered,
        }
    }

    /// Register a record's value.
    pub fn insert(&mut self, value: &Value, id: RecordId) {
        match self {
            SecondaryIndex::Hash { map, len, .. } => {
                map.entry(value.hash_key()).or_default().push(id);
                *len += 1;
            }
            SecondaryIndex::Ordered { map, len, .. } => {
                map.entry(OrdValue(value.clone())).or_default().push(id);
                *len += 1;
            }
        }
    }

    /// Remove a record's value (no-op if absent).
    pub fn remove(&mut self, value: &Value, id: RecordId) {
        match self {
            SecondaryIndex::Hash { map, len, .. } => {
                if let Entry::Occupied(mut e) = map.entry(value.hash_key()) {
                    let before = e.get().len();
                    e.get_mut().retain(|&r| r != id);
                    *len -= before - e.get().len();
                    if e.get().is_empty() {
                        e.remove();
                    }
                }
            }
            SecondaryIndex::Ordered { map, len, .. } => {
                let key = OrdValue(value.clone());
                if let Some(ids) = map.get_mut(&key) {
                    let before = ids.len();
                    ids.retain(|&r| r != id);
                    *len -= before - ids.len();
                    if ids.is_empty() {
                        map.remove(&key);
                    }
                }
            }
        }
    }

    /// Total indexed entries (records with a value in this index),
    /// maintained as a counter — O(1), never a scan.
    pub fn cardinality(&self) -> usize {
        match self {
            SecondaryIndex::Hash { len, .. } | SecondaryIndex::Ordered { len, .. } => *len,
        }
    }

    /// Exact number of records equal to `value` — O(1) hash probe or
    /// one B-tree descent; no list is cloned.
    pub fn count_eq(&self, value: &Value) -> usize {
        match self {
            SecondaryIndex::Hash { map, .. } => {
                map.get(&value.hash_key()).map_or(0, |ids| ids.len())
            }
            SecondaryIndex::Ordered { map, .. } => {
                map.get(&OrdValue(value.clone())).map_or(0, |ids| ids.len())
            }
        }
    }

    /// Exact number of records in `[low, high]` (inclusive bounds,
    /// `None` = unbounded). `None` for hash indexes, which cannot
    /// answer ranges. Costs one B-tree walk over the touched keys but
    /// copies no record ids.
    pub fn count_range(&self, low: Option<&Value>, high: Option<&Value>) -> Option<usize> {
        match self {
            SecondaryIndex::Hash { .. } => None,
            SecondaryIndex::Ordered { map, .. } => {
                use std::ops::Bound;
                let lo = match low {
                    Some(v) => Bound::Included(OrdValue(v.clone())),
                    None => Bound::Unbounded,
                };
                let hi = match high {
                    Some(v) => Bound::Included(OrdValue(v.clone())),
                    None => Bound::Unbounded,
                };
                Some(map.range((lo, hi)).map(|(_, ids)| ids.len()).sum())
            }
        }
    }

    /// Record ids equal to `value`.
    pub fn lookup_eq(&self, value: &Value) -> Vec<RecordId> {
        match self {
            SecondaryIndex::Hash { map, .. } => {
                map.get(&value.hash_key()).cloned().unwrap_or_default()
            }
            SecondaryIndex::Ordered { map, .. } => map
                .get(&OrdValue(value.clone()))
                .cloned()
                .unwrap_or_default(),
        }
    }

    /// Record ids in `[low, high]` (inclusive bounds; `None` =
    /// unbounded). Only ordered indexes support ranges.
    pub fn lookup_range(&self, low: Option<&Value>, high: Option<&Value>) -> Option<Vec<RecordId>> {
        match self {
            SecondaryIndex::Hash { .. } => None,
            SecondaryIndex::Ordered { map, .. } => {
                use std::ops::Bound;
                let lo = match low {
                    Some(v) => Bound::Included(OrdValue(v.clone())),
                    None => Bound::Unbounded,
                };
                let hi = match high {
                    Some(v) => Bound::Included(OrdValue(v.clone())),
                    None => Bound::Unbounded,
                };
                let mut out = Vec::new();
                for (_, ids) in map.range((lo, hi)) {
                    out.extend_from_slice(ids);
                }
                Some(out)
            }
        }
    }

    /// Per-key `(value, count)` pairs in key order — the facet fast
    /// path: one tree walk over maintained lists, no record touched.
    /// `None` for hash indexes, whose keys are one-way hashes.
    pub fn value_counts(&self) -> Option<Vec<(Value, usize)>> {
        match self {
            SecondaryIndex::Hash { .. } => None,
            SecondaryIndex::Ordered { map, .. } => Some(
                map.iter()
                    .map(|(k, ids)| (k.0.clone(), ids.len()))
                    .collect(),
            ),
        }
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match self {
            SecondaryIndex::Hash { map, .. } => map.len(),
            SecondaryIndex::Ordered { map, .. } => map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: Vec<u32>) -> Vec<RecordId> {
        v.into_iter().map(RecordId).collect()
    }

    #[test]
    fn hash_index_eq_lookup() {
        let mut ix = SecondaryIndex::new(IndexKind::Hash, 0);
        ix.insert(&Value::Text("a".into()), RecordId(1));
        ix.insert(&Value::Text("a".into()), RecordId(2));
        ix.insert(&Value::Text("b".into()), RecordId(3));
        assert_eq!(ix.lookup_eq(&Value::Text("a".into())), ids(vec![1, 2]));
        assert_eq!(ix.lookup_eq(&Value::Text("zz".into())), ids(vec![]));
        assert!(ix.lookup_range(None, None).is_none());
    }

    #[test]
    fn ordered_index_range_lookup() {
        let mut ix = SecondaryIndex::new(IndexKind::Ordered, 1);
        for (i, v) in [10, 20, 30, 40].iter().enumerate() {
            ix.insert(&Value::Int(*v), RecordId(i as u32));
        }
        let got = ix
            .lookup_range(Some(&Value::Int(15)), Some(&Value::Int(35)))
            .unwrap();
        assert_eq!(got, ids(vec![1, 2]));
        let all = ix.lookup_range(None, None).unwrap();
        assert_eq!(all.len(), 4);
        let open_high = ix.lookup_range(Some(&Value::Int(30)), None).unwrap();
        assert_eq!(open_high, ids(vec![2, 3]));
    }

    #[test]
    fn ordered_index_mixed_numeric_keys_merge() {
        let mut ix = SecondaryIndex::new(IndexKind::Ordered, 0);
        ix.insert(&Value::Int(2), RecordId(0));
        ix.insert(&Value::Float(2.0), RecordId(1));
        // Int(2) and Float(2.0) compare equal under cmp_total, so they
        // share one key.
        assert_eq!(ix.distinct_keys(), 1);
        assert_eq!(ix.lookup_eq(&Value::Int(2)), ids(vec![0, 1]));
    }

    #[test]
    fn remove_cleans_up_empty_keys() {
        let mut ix = SecondaryIndex::new(IndexKind::Hash, 0);
        ix.insert(&Value::Int(1), RecordId(0));
        ix.remove(&Value::Int(1), RecordId(0));
        assert_eq!(ix.distinct_keys(), 0);
        // Removing again is a no-op.
        ix.remove(&Value::Int(1), RecordId(0));
    }

    #[test]
    fn remove_only_target_id() {
        let mut ix = SecondaryIndex::new(IndexKind::Ordered, 0);
        ix.insert(&Value::Int(1), RecordId(0));
        ix.insert(&Value::Int(1), RecordId(1));
        ix.remove(&Value::Int(1), RecordId(0));
        assert_eq!(ix.lookup_eq(&Value::Int(1)), ids(vec![1]));
    }

    #[test]
    fn cardinality_counter_tracks_inserts_and_removes() {
        for kind in [IndexKind::Hash, IndexKind::Ordered] {
            let mut ix = SecondaryIndex::new(kind, 0);
            assert_eq!(ix.cardinality(), 0);
            ix.insert(&Value::Int(1), RecordId(0));
            ix.insert(&Value::Int(1), RecordId(1));
            ix.insert(&Value::Int(2), RecordId(2));
            assert_eq!(ix.cardinality(), 3);
            assert_eq!(ix.count_eq(&Value::Int(1)), 2);
            assert_eq!(ix.count_eq(&Value::Int(9)), 0);
            ix.remove(&Value::Int(1), RecordId(0));
            assert_eq!(ix.cardinality(), 2);
            // Removing an absent (value, id) pair must not decrement.
            ix.remove(&Value::Int(1), RecordId(0));
            ix.remove(&Value::Int(7), RecordId(0));
            assert_eq!(ix.cardinality(), 2);
        }
    }

    #[test]
    fn count_range_matches_lookup_range() {
        let mut ix = SecondaryIndex::new(IndexKind::Ordered, 0);
        for (i, v) in [10, 20, 20, 30, 40].iter().enumerate() {
            ix.insert(&Value::Int(*v), RecordId(i as u32));
        }
        for (lo, hi) in [
            (None, None),
            (Some(15), None),
            (None, Some(25)),
            (Some(20), Some(20)),
            (Some(99), None),
        ] {
            let lo = lo.map(Value::Int);
            let hi = hi.map(Value::Int);
            let listed = ix.lookup_range(lo.as_ref(), hi.as_ref()).unwrap().len();
            assert_eq!(ix.count_range(lo.as_ref(), hi.as_ref()), Some(listed));
        }
        let hash = SecondaryIndex::new(IndexKind::Hash, 0);
        assert_eq!(hash.count_range(None, None), None);
    }

    #[test]
    fn null_values_are_indexable() {
        let mut ix = SecondaryIndex::new(IndexKind::Hash, 0);
        ix.insert(&Value::Null, RecordId(5));
        assert_eq!(ix.lookup_eq(&Value::Null), ids(vec![5]));
    }
}
