//! The value model for proprietary structured data.
//!
//! Symphony ingests "a variety of structured data formats (delimited
//! files, Excel files, and XML)". All of them deliver strings; typed
//! [`Value`]s are produced by parsing against an inferred or declared
//! [`FieldType`](crate::schema::FieldType).

use crate::datetime::{format_epoch, parse_datetime};
use std::cmp::Ordering;

/// A typed cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing / empty.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Seconds since the Unix epoch (UTC).
    DateTime(i64),
    /// A URL, kept distinct so layouts can bind hyperlinks safely.
    Url(String),
}

impl Value {
    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Render the value the way templates and CSV export need it.
    pub fn display_string(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{:.1}", f)
                } else {
                    f.to_string()
                }
            }
            Value::Text(s) | Value::Url(s) => s.clone(),
            Value::DateTime(t) => format_epoch(*t),
        }
    }

    /// Text used for full-text indexing (same as display for now; URLs
    /// additionally index their host tokens via the analyzer).
    pub fn index_text(&self) -> String {
        self.display_string()
    }

    /// Total order across values, used by the ordered secondary index
    /// and ORDER BY. Nulls sort first; mixed numeric types compare
    /// numerically; otherwise ordering is by type tag then value.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Url(a), Url(b)) => a.cmp(b),
            (Text(a), Url(b)) | (Url(a), Text(b)) => a.cmp(b),
            (DateTime(a), DateTime(b)) => a.cmp(b),
            // Cross-type: order by type tag for a stable total order.
            (a, b) => a.tag().cmp(&b.tag()),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::DateTime(_) => 4,
            Value::Text(_) => 5,
            Value::Url(_) => 6,
        }
    }

    /// A hashable key for hash indexes. Floats use their bit pattern
    /// (hash indexes on floats therefore distinguish `0.0`/`-0.0`,
    /// which is acceptable for equality lookups on ingested data).
    pub fn hash_key(&self) -> ValueKey {
        match self {
            Value::Null => ValueKey::Null,
            Value::Bool(b) => ValueKey::Bool(*b),
            Value::Int(i) => ValueKey::Int(*i),
            Value::Float(f) => ValueKey::FloatBits(f.to_bits()),
            Value::Text(s) => ValueKey::Text(s.clone()),
            Value::Url(s) => ValueKey::Url(s.clone()),
            Value::DateTime(t) => ValueKey::DateTime(*t),
        }
    }

    /// Parse a raw string into the "most specific" value: empty →
    /// `Null`, then bool, int, float, datetime, URL, falling back to
    /// text. Schema inference is built on this.
    pub fn sniff(raw: &str) -> Value {
        let t = raw.trim();
        if t.is_empty() {
            return Value::Null;
        }
        match t {
            "true" | "TRUE" | "True" => return Value::Bool(true),
            "false" | "FALSE" | "False" => return Value::Bool(false),
            _ => {}
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if looks_numeric(t) {
            if let Ok(f) = t.parse::<f64>() {
                return Value::Float(f);
            }
        }
        if let Some(epoch) = parse_datetime(t) {
            return Value::DateTime(epoch);
        }
        if t.starts_with("http://") || t.starts_with("https://") {
            return Value::Url(t.to_string());
        }
        Value::Text(t.to_string())
    }
}

/// `f64::parse` accepts "inf", "nan", "3e7" etc.; restrict sniffing to
/// digit-looking strings so product codes stay text.
fn looks_numeric(t: &str) -> bool {
    let body = t.strip_prefix('-').unwrap_or(t);
    !body.is_empty()
        && body.chars().all(|c| c.is_ascii_digit() || c == '.')
        && body.chars().filter(|&c| c == '.').count() <= 1
        && body.chars().any(|c| c.is_ascii_digit())
}

/// Hashable projection of a [`Value`] (see [`Value::hash_key`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueKey {
    /// Null key.
    Null,
    /// Bool key.
    Bool(bool),
    /// Int key.
    Int(i64),
    /// Float key by bit pattern.
    FloatBits(u64),
    /// Text key.
    Text(String),
    /// Url key.
    Url(String),
    /// DateTime key.
    DateTime(i64),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.display_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniff_null() {
        assert_eq!(Value::sniff(""), Value::Null);
        assert_eq!(Value::sniff("   "), Value::Null);
    }

    #[test]
    fn sniff_bool_int_float() {
        assert_eq!(Value::sniff("true"), Value::Bool(true));
        assert_eq!(Value::sniff("FALSE"), Value::Bool(false));
        assert_eq!(Value::sniff("42"), Value::Int(42));
        assert_eq!(Value::sniff("-7"), Value::Int(-7));
        assert_eq!(Value::sniff("3.5"), Value::Float(3.5));
    }

    #[test]
    fn sniff_rejects_exotic_float_syntax() {
        assert_eq!(Value::sniff("inf"), Value::Text("inf".into()));
        assert_eq!(Value::sniff("NaN"), Value::Text("NaN".into()));
        assert_eq!(Value::sniff("3e7"), Value::Text("3e7".into()));
        assert_eq!(Value::sniff("1.2.3"), Value::Text("1.2.3".into()));
    }

    #[test]
    fn sniff_datetime_and_url() {
        assert!(matches!(Value::sniff("2009-11-03"), Value::DateTime(_)));
        assert!(matches!(
            Value::sniff("https://gamespot.com/x"),
            Value::Url(_)
        ));
    }

    #[test]
    fn sniff_text_fallback() {
        assert_eq!(
            Value::sniff("Galactic Raiders"),
            Value::Text("Galactic Raiders".into())
        );
    }

    #[test]
    fn display_roundtrip_examples() {
        assert_eq!(Value::Int(5).display_string(), "5");
        assert_eq!(Value::Float(2.0).display_string(), "2.0");
        assert_eq!(Value::Bool(true).display_string(), "true");
        assert_eq!(Value::Null.display_string(), "");
    }

    #[test]
    fn total_order_nulls_first_and_numeric_mix() {
        assert_eq!(Value::Null.cmp_total(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Int(2).cmp_total(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).cmp_total(&Value::Int(3)), Ordering::Equal);
        assert_eq!(
            Value::Text("a".into()).cmp_total(&Value::Text("b".into())),
            Ordering::Less
        );
    }

    #[test]
    fn cross_type_order_is_stable() {
        let a = Value::Bool(true);
        let b = Value::Text("x".into());
        assert_eq!(a.cmp_total(&b), Ordering::Less);
        assert_eq!(b.cmp_total(&a), Ordering::Greater);
    }

    #[test]
    fn hash_key_equality_matches_value_equality() {
        assert_eq!(
            Value::Text("a".into()).hash_key(),
            Value::Text("a".into()).hash_key()
        );
        assert_ne!(Value::Int(1).hash_key(), Value::Int(2).hash_key());
    }
}
