//! Format parsers for uploaded proprietary data.
//!
//! Every parser is written from scratch (see the dependency budget in
//! DESIGN.md) and produces the same shape — header names plus string
//! rows — which [`ingest`](crate::ingest) turns into typed tables via
//! schema inference.

pub mod csv;
pub mod json;
pub mod rss;
pub mod worksheet;
pub mod xml;
