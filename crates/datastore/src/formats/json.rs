//! Minimal JSON parser and record extraction.
//!
//! Written from scratch per the dependency budget in DESIGN.md. The
//! parser accepts standard JSON (RFC 8259) with the usual escape
//! sequences; numbers are held as `f64`.

use crate::error::StoreError;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Flatten to the string form used for table cells.
    pub fn cell_string(&self) -> String {
        match self {
            JsonValue::Null => String::new(),
            JsonValue::Bool(b) => b.to_string(),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    n.to_string()
                }
            }
            JsonValue::Str(s) => s.clone(),
            // Nested structures stringify (documented lossy behaviour;
            // Symphony's layouts bind flat fields).
            JsonValue::Arr(items) => items
                .iter()
                .map(|v| v.cell_string())
                .collect::<Vec<_>>()
                .join("; "),
            JsonValue::Obj(_) => to_string(self),
        }
    }
}

/// Serialize a [`JsonValue`] back to compact JSON text.
pub fn to_string(v: &JsonValue) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

fn write_value(out: &mut String, v: &JsonValue) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&n.to_string());
            }
        }
        JsonValue::Str(s) => write_json_string(out, s),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        JsonValue::Obj(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text.
pub fn parse(input: &str) -> Result<JsonValue, StoreError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> StoreError {
        StoreError::Parse(format!("json: {msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), StoreError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, StoreError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, StoreError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, StoreError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, StoreError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs.
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let len = utf8_len(c);
                    let start = self.pos - 1;
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, StoreError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .bump()
                .ok_or_else(|| self.err("short unicode escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn array(&mut self) -> Result<JsonValue, StoreError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, StoreError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Obj(members)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Extract tabular records from parsed JSON: the document must be an
/// array of objects (or an object with a single array-of-objects
/// member, the common `{"items": [...]}` envelope). Column order is
/// first-seen order.
pub fn records(doc: &JsonValue) -> Result<(Vec<String>, Vec<Vec<String>>), StoreError> {
    let arr = match doc {
        JsonValue::Arr(a) => a,
        JsonValue::Obj(members) => members
            .iter()
            .find_map(|(_, v)| match v {
                JsonValue::Arr(a) if a.iter().all(|x| matches!(x, JsonValue::Obj(_))) => Some(a),
                _ => None,
            })
            .ok_or_else(|| {
                StoreError::Parse("json: no array of objects found for records".into())
            })?,
        _ => {
            return Err(StoreError::Parse(
                "json: records require an array of objects".into(),
            ))
        }
    };
    let mut names: Vec<String> = Vec::new();
    for item in arr {
        if let JsonValue::Obj(members) = item {
            for (k, _) in members {
                if !names.contains(k) {
                    names.push(k.clone());
                }
            }
        } else {
            return Err(StoreError::Parse(
                "json: records array contains a non-object".into(),
            ));
        }
    }
    let rows = arr
        .iter()
        .map(|item| {
            names
                .iter()
                .map(|n| item.get(n).map(|v| v.cell_string()).unwrap_or_default())
                .collect()
        })
        .collect();
    Ok((names, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("42").unwrap(), JsonValue::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), JsonValue::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap(),
            JsonValue::Str("a\"b\\c\ndA".into())
        );
    }

    #[test]
    fn surrogate_pair() {
        assert_eq!(parse(r#""😀""#).unwrap(), JsonValue::Str("😀".into()));
    }

    #[test]
    fn utf8_passthrough() {
        assert_eq!(
            parse("\"Café 😀\"").unwrap(),
            JsonValue::Str("Café 😀".into())
        );
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#).unwrap();
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")),
            Some(&JsonValue::Bool(true))
        );
    }

    #[test]
    fn whitespace_tolerated() {
        assert!(parse(" { \"a\" : [ 1 , 2 ] } ").is_ok());
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{}x").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("{\"a\"").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn roundtrip() {
        let src = r#"{"t":"Galactic \"R\"","n":3,"f":1.5,"b":false,"x":null,"a":[1,"two"]}"#;
        let v = parse(src).unwrap();
        let back = parse(&to_string(&v)).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn records_from_array() {
        let v = parse(r#"[{"t":"A","p":1},{"t":"B","q":2}]"#).unwrap();
        let (names, rows) = records(&v).unwrap();
        assert_eq!(names, vec!["t", "p", "q"]);
        assert_eq!(rows[0], vec!["A", "1", ""]);
        assert_eq!(rows[1], vec!["B", "", "2"]);
    }

    #[test]
    fn records_from_envelope() {
        let v = parse(r#"{"count":2,"items":[{"t":"A"},{"t":"B"}]}"#).unwrap();
        let (names, rows) = records(&v).unwrap();
        assert_eq!(names, vec!["t"]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn records_reject_scalars() {
        assert!(records(&parse("[1,2]").unwrap()).is_err());
        assert!(records(&parse("3").unwrap()).is_err());
    }

    #[test]
    fn cell_string_flattening() {
        let v = parse(r#"{"a":[1,2],"o":{"x":1}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().cell_string(), "1; 2");
        assert_eq!(v.get("o").unwrap().cell_string(), r#"{"x":1}"#);
    }
}
