//! "Worksheet" parser — the Excel stand-in.
//!
//! The paper lists Excel files among the supported uploads. Parsing
//! the binary XLS container adds nothing to the platform architecture,
//! so (per the substitution table in DESIGN.md) we accept a plain-text
//! worksheet dialect instead: optional `## sheet: <name>` header lines,
//! tab-separated cells, one sheet per block. Multiple sheets
//! concatenate when their headers match; otherwise the first sheet
//! wins and the rest are reported in [`Worksheet::skipped_sheets`].

use crate::error::StoreError;
use crate::formats::csv::{parse_delimited, Delimited};

/// A parsed worksheet file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Worksheet {
    /// Name of the (first) sheet, or "Sheet1".
    pub sheet: String,
    /// Header + rows of the accepted sheet(s).
    pub data: Delimited,
    /// Sheets whose headers did not match the first sheet.
    pub skipped_sheets: Vec<String>,
}

/// Parse the worksheet dialect.
pub fn parse_worksheet(input: &str) -> Result<Worksheet, StoreError> {
    // Split into sheets on "## sheet:" marker lines.
    let mut sheets: Vec<(String, String)> = Vec::new();
    let mut current_name: Option<String> = None;
    let mut current = String::new();
    for line in input.lines() {
        if let Some(rest) = line.strip_prefix("## sheet:") {
            if current_name.is_some() || !current.trim().is_empty() {
                sheets.push((
                    current_name.take().unwrap_or_else(|| "Sheet1".into()),
                    std::mem::take(&mut current),
                ));
            }
            current_name = Some(rest.trim().to_string());
        } else {
            current.push_str(line);
            current.push('\n');
        }
    }
    if current_name.is_some() || !current.trim().is_empty() {
        sheets.push((current_name.unwrap_or_else(|| "Sheet1".into()), current));
    }
    if sheets.is_empty() {
        return Err(StoreError::Parse("worksheet: empty file".into()));
    }
    let (first_name, first_body) = &sheets[0];
    let mut data = parse_delimited(first_body, '\t')?;
    let mut skipped = Vec::new();
    for (name, body) in &sheets[1..] {
        match parse_delimited(body, '\t') {
            Ok(d) if d.names == data.names => data.rows.extend(d.rows),
            _ => skipped.push(name.clone()),
        }
    }
    Ok(Worksheet {
        sheet: first_name.clone(),
        data,
        skipped_sheets: skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unnamed_sheet() {
        let ws = parse_worksheet("a\tb\n1\t2\n").unwrap();
        assert_eq!(ws.sheet, "Sheet1");
        assert_eq!(ws.data.names, vec!["a", "b"]);
        assert_eq!(ws.data.rows, vec![vec!["1", "2"]]);
    }

    #[test]
    fn named_sheet() {
        let ws = parse_worksheet("## sheet: Inventory\nt\tp\nA\t9\n").unwrap();
        assert_eq!(ws.sheet, "Inventory");
        assert_eq!(ws.data.rows.len(), 1);
    }

    #[test]
    fn matching_sheets_concatenate() {
        let src = "## sheet: S1\nt\tp\nA\t1\n## sheet: S2\nt\tp\nB\t2\n";
        let ws = parse_worksheet(src).unwrap();
        assert_eq!(ws.data.rows.len(), 2);
        assert!(ws.skipped_sheets.is_empty());
    }

    #[test]
    fn mismatched_sheets_skipped_and_reported() {
        let src = "## sheet: S1\nt\tp\nA\t1\n## sheet: Other\nx\ty\tz\n1\t2\t3\n";
        let ws = parse_worksheet(src).unwrap();
        assert_eq!(ws.data.rows.len(), 1);
        assert_eq!(ws.skipped_sheets, vec!["Other"]);
    }

    #[test]
    fn empty_file_errors() {
        assert!(parse_worksheet("").is_err());
        assert!(parse_worksheet("   \n").is_err());
    }
}
