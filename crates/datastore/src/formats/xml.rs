//! Minimal XML parser and record extraction.
//!
//! Supports the subset uploaded data and RSS feeds actually use:
//! elements, attributes, character data, entity references
//! (`&amp; &lt; &gt; &quot; &apos;` and numeric), CDATA sections,
//! comments, processing instructions, and self-closing tags. No
//! namespaces-aware processing (prefixes are kept verbatim), no DTDs.

use crate::error::StoreError;

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq)]
pub struct XmlElement {
    /// Tag name (prefix kept verbatim).
    pub tag: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlElement>,
    /// Concatenated character data directly inside this element
    /// (trimmed).
    pub text: String,
}

impl XmlElement {
    /// First child with the given tag.
    pub fn child(&self, tag: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| c.tag == tag)
    }

    /// All children with the given tag.
    pub fn children_named<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.tag == tag)
    }

    /// Text of the first child with the given tag, if any.
    pub fn child_text(&self, tag: &str) -> Option<&str> {
        self.child(tag).map(|c| c.text.as_str())
    }

    /// Attribute lookup.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse an XML document into its root element.
pub fn parse(input: &str) -> Result<XmlElement, StoreError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        input,
        pos: 0,
    };
    p.skip_misc();
    let root = p.element()?;
    p.skip_misc();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> StoreError {
        StoreError::Parse(format!("xml: {msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, XML declarations, PIs, comments, and DOCTYPE.
    fn skip_misc(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>");
            } else if self.starts_with("<!--") {
                self.skip_until("-->");
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_until(">");
            } else {
                return;
            }
        }
    }

    fn skip_until(&mut self, end: &str) {
        match self.input[self.pos..].find(end) {
            Some(i) => self.pos += i + end.len(),
            None => self.pos = self.bytes.len(),
        }
    }

    fn name(&mut self) -> Result<String, StoreError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b':' | b'.'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn element(&mut self) -> Result<XmlElement, StoreError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let tag = self.name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(XmlElement {
                        tag,
                        attrs,
                        children: Vec::new(),
                        text: String::new(),
                    });
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if quote != Some(b'"') && quote != Some(b'\'') {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    let q = quote.unwrap();
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some() && self.peek() != Some(q) {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = &self.input[start..self.pos];
                    self.pos += 1;
                    attrs.push((key, unescape(raw)));
                }
                None => return Err(self.err("unexpected end inside tag")),
            }
        }
        // Content.
        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            if self.starts_with("<!--") {
                self.skip_until("-->");
                continue;
            }
            if self.starts_with("<![CDATA[") {
                self.pos += "<![CDATA[".len();
                let start = self.pos;
                match self.input[self.pos..].find("]]>") {
                    Some(i) => {
                        text.push_str(&self.input[start..start + i]);
                        self.pos = start + i + 3;
                    }
                    None => return Err(self.err("unterminated CDATA")),
                }
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != tag {
                    return Err(self.err(&format!("mismatched close tag </{close}> for <{tag}>")));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in close tag"));
                }
                self.pos += 1;
                return Ok(XmlElement {
                    tag,
                    attrs,
                    children,
                    text: text.trim().to_string(),
                });
            }
            if self.starts_with("<?") {
                self.skip_until("?>");
                continue;
            }
            match self.peek() {
                Some(b'<') => children.push(self.element()?),
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some() && self.peek() != Some(b'<') {
                        self.pos += 1;
                    }
                    text.push_str(&unescape(&self.input[start..self.pos]));
                }
                None => return Err(self.err(&format!("unterminated element <{tag}>"))),
            }
        }
    }
}

/// Decode XML entity references.
pub fn unescape(raw: &str) -> String {
    if !raw.contains('&') {
        return raw.to_string();
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let end = match rest.find(';') {
            Some(e) if e <= 10 => e,
            _ => {
                out.push('&');
                rest = &rest[1..];
                continue;
            }
        };
        let entity = &rest[1..end];
        let decoded = match entity {
            "amp" => Some('&'),
            "lt" => Some('<'),
            "gt" => Some('>'),
            "quot" => Some('"'),
            "apos" => Some('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                u32::from_str_radix(&entity[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
            }
            _ if entity.starts_with('#') => {
                entity[1..].parse::<u32>().ok().and_then(char::from_u32)
            }
            _ => None,
        };
        match decoded {
            Some(c) => {
                out.push(c);
                rest = &rest[end + 1..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

/// Escape text for XML character data / attribute values.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

/// Extract tabular records from an XML document: the majority child
/// tag under the root (or under a single wrapper child) is treated as
/// the row element; each row's child-element texts become columns and
/// attributes become columns too.
pub fn records(root: &XmlElement) -> Result<(Vec<String>, Vec<Vec<String>>), StoreError> {
    let rows_parent = if root.children.len() == 1 && !root.children[0].children.is_empty() {
        &root.children[0]
    } else {
        root
    };
    // Majority tag among children.
    let mut counts: Vec<(&str, usize)> = Vec::new();
    for c in &rows_parent.children {
        match counts.iter_mut().find(|(t, _)| *t == c.tag) {
            Some((_, n)) => *n += 1,
            None => counts.push((&c.tag, 1)),
        }
    }
    let row_tag = counts
        .iter()
        .max_by_key(|(_, n)| *n)
        .map(|(t, _)| t.to_string())
        .ok_or_else(|| StoreError::Parse("xml: no row elements found".into()))?;
    let rows_elems: Vec<&XmlElement> = rows_parent.children_named(&row_tag).collect();

    let mut names: Vec<String> = Vec::new();
    for row in &rows_elems {
        for (k, _) in &row.attrs {
            if !names.contains(k) {
                names.push(k.clone());
            }
        }
        for c in &row.children {
            if !names.contains(&c.tag) {
                names.push(c.tag.clone());
            }
        }
    }
    if names.is_empty() {
        return Err(StoreError::Parse(
            "xml: row elements carry no fields".into(),
        ));
    }
    let rows = rows_elems
        .iter()
        .map(|row| {
            names
                .iter()
                .map(|n| {
                    row.attr(n)
                        .map(str::to_string)
                        .or_else(|| row.child_text(n).map(str::to_string))
                        .unwrap_or_default()
                })
                .collect()
        })
        .collect();
    Ok((names, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_document() {
        let root = parse("<inv><item><t>A</t></item></inv>").unwrap();
        assert_eq!(root.tag, "inv");
        assert_eq!(root.children[0].child_text("t"), Some("A"));
    }

    #[test]
    fn declaration_comments_doctype_skipped() {
        let src = "<?xml version=\"1.0\"?><!DOCTYPE inv><!-- hi --><inv><a>1</a></inv>";
        let root = parse(src).unwrap();
        assert_eq!(root.tag, "inv");
    }

    #[test]
    fn attributes_and_self_closing() {
        let root = parse("<r><img src=\"http://x/y.png\" w='5'/></r>").unwrap();
        let img = root.child("img").unwrap();
        assert_eq!(img.attr("src"), Some("http://x/y.png"));
        assert_eq!(img.attr("w"), Some("5"));
        assert_eq!(img.attr("nope"), None);
    }

    #[test]
    fn entities_decoded() {
        let root = parse("<t a=\"x &amp; y\">1 &lt; 2 &#65;&#x42;</t>").unwrap();
        assert_eq!(root.attr("a"), Some("x & y"));
        assert_eq!(root.text, "1 < 2 AB");
    }

    #[test]
    fn bare_ampersand_survives() {
        assert_eq!(unescape("a & b &unknown; c"), "a & b &unknown; c");
    }

    #[test]
    fn cdata() {
        let root = parse("<t><![CDATA[<raw> & stuff]]></t>").unwrap();
        assert_eq!(root.text, "<raw> & stuff");
    }

    #[test]
    fn mismatched_close_errors() {
        assert!(parse("<a><b></a></b>").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a></a><b></b>").is_err());
    }

    #[test]
    fn escape_roundtrip() {
        let s = "a<b>&\"c'";
        assert_eq!(unescape(&escape(s)), s);
    }

    #[test]
    fn records_majority_child() {
        let src = "<inventory>\
            <game id=\"1\"><title>A</title><price>9.99</price></game>\
            <game id=\"2\"><title>B</title></game>\
            <meta>ignored</meta>\
            </inventory>";
        let (names, rows) = records(&parse(src).unwrap()).unwrap();
        assert_eq!(names, vec!["id", "title", "price"]);
        assert_eq!(rows[0], vec!["1", "A", "9.99"]);
        assert_eq!(rows[1], vec!["2", "B", ""]);
    }

    #[test]
    fn records_under_wrapper() {
        let src = "<doc><items><i><x>1</x></i><i><x>2</x></i></items></doc>";
        let (names, rows) = records(&parse(src).unwrap()).unwrap();
        assert_eq!(names, vec!["x"]);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn records_empty_errors() {
        assert!(records(&parse("<a></a>").unwrap()).is_err());
        assert!(records(&parse("<a><b></b></a>").unwrap()).is_err());
    }

    #[test]
    fn nested_text_trimmed() {
        let root = parse("<t>\n  hello  \n</t>").unwrap();
        assert_eq!(root.text, "hello");
    }
}
