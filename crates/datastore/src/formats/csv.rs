//! Delimited-file parser (CSV/TSV), RFC-4180 quoting.
//!
//! The first row is the header. Quoted fields may contain delimiters,
//! newlines, and doubled-quote escapes. Both `\n` and `\r\n` row
//! terminators are accepted.

use crate::error::StoreError;

/// Parsed delimited content: header names plus string rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delimited {
    /// Column names from the header row.
    pub names: Vec<String>,
    /// Data rows (ragged rows allowed; the table layer pads).
    pub rows: Vec<Vec<String>>,
}

/// Parse delimited `input` with the given `delimiter` (`,` for CSV,
/// `\t` for TSV).
pub fn parse_delimited(input: &str, delimiter: char) -> Result<Delimited, StoreError> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cell.push(c),
            }
            continue;
        }
        match c {
            '"' if cell.is_empty() => in_quotes = true,
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    continue; // handled by the \n branch
                }
                end_row(&mut records, &mut row, &mut cell);
            }
            '\n' => end_row(&mut records, &mut row, &mut cell),
            c if c == delimiter => {
                row.push(std::mem::take(&mut cell));
            }
            _ => cell.push(c),
        }
    }
    if in_quotes {
        return Err(StoreError::Parse(
            "unterminated quote in delimited file".into(),
        ));
    }
    if !cell.is_empty() || !row.is_empty() {
        end_row(&mut records, &mut row, &mut cell);
    }
    let _ = any;
    if records.is_empty() {
        return Err(StoreError::Parse("delimited file has no header row".into()));
    }
    let names = records.remove(0);
    if names.iter().all(|n| n.trim().is_empty()) {
        return Err(StoreError::Parse("header row is empty".into()));
    }
    Ok(Delimited {
        names: names.into_iter().map(|n| n.trim().to_string()).collect(),
        rows: records,
    })
}

fn end_row(records: &mut Vec<Vec<String>>, row: &mut Vec<String>, cell: &mut String) {
    row.push(std::mem::take(cell));
    // Skip fully blank lines (a single empty cell).
    if row.len() == 1 && row[0].is_empty() {
        row.clear();
        return;
    }
    records.push(std::mem::take(row));
}

/// Serialize rows back to CSV (used by the referral-audit export).
pub fn to_csv(names: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    write_row(&mut out, names);
    for r in rows {
        write_row(&mut out, r);
    }
    out
}

fn write_row<S: AsRef<str>>(out: &mut String, row: &[S]) {
    for (i, cell) in row.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let c = cell.as_ref();
        if c.contains([',', '"', '\n', '\r']) {
            out.push('"');
            out.push_str(&c.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(c);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_csv() {
        let d = parse_delimited("a,b,c\n1,2,3\n4,5,6\n", ',').unwrap();
        assert_eq!(d.names, vec!["a", "b", "c"]);
        assert_eq!(d.rows, vec![vec!["1", "2", "3"], vec!["4", "5", "6"]]);
    }

    #[test]
    fn quoted_fields_with_delimiters_and_newlines() {
        let d = parse_delimited("t,d\n\"Raiders, Galactic\",\"line1\nline2\"\n", ',').unwrap();
        assert_eq!(d.rows[0][0], "Raiders, Galactic");
        assert_eq!(d.rows[0][1], "line1\nline2");
    }

    #[test]
    fn doubled_quote_escape() {
        let d = parse_delimited("t\n\"say \"\"hi\"\"\"\n", ',').unwrap();
        assert_eq!(d.rows[0][0], "say \"hi\"");
    }

    #[test]
    fn crlf_rows() {
        let d = parse_delimited("a,b\r\n1,2\r\n", ',').unwrap();
        assert_eq!(d.rows, vec![vec!["1", "2"]]);
    }

    #[test]
    fn tsv() {
        let d = parse_delimited("a\tb\n1\t2\n", '\t').unwrap();
        assert_eq!(d.names, vec!["a", "b"]);
        assert_eq!(d.rows[0], vec!["1", "2"]);
    }

    #[test]
    fn blank_lines_skipped() {
        let d = parse_delimited("a,b\n\n1,2\n\n", ',').unwrap();
        assert_eq!(d.rows.len(), 1);
    }

    #[test]
    fn missing_trailing_newline() {
        let d = parse_delimited("a,b\n1,2", ',').unwrap();
        assert_eq!(d.rows, vec![vec!["1", "2"]]);
    }

    #[test]
    fn trailing_empty_cell_preserved() {
        let d = parse_delimited("a,b\n1,\n", ',').unwrap();
        assert_eq!(d.rows[0], vec!["1", ""]);
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(matches!(
            parse_delimited("a\n\"oops\n", ','),
            Err(StoreError::Parse(_))
        ));
    }

    #[test]
    fn empty_input_errors() {
        assert!(parse_delimited("", ',').is_err());
        assert!(parse_delimited("\n\n", ',').is_err());
    }

    #[test]
    fn ragged_rows_pass_through() {
        let d = parse_delimited("a,b,c\n1,2\n1,2,3,4\n", ',').unwrap();
        assert_eq!(d.rows[0].len(), 2);
        assert_eq!(d.rows[1].len(), 4);
    }

    #[test]
    fn csv_writer_roundtrip() {
        let names: Vec<String> = vec!["t".into(), "d".into()];
        let rows = vec![vec![
            "plain".to_string(),
            "with,comma \"q\"\nnl".to_string(),
        ]];
        let csv = to_csv(&names, &rows);
        let back = parse_delimited(&csv, ',').unwrap();
        assert_eq!(back.names, names);
        assert_eq!(back.rows, rows);
    }
}
