//! RSS 2.0 feed parsing (on top of the XML parser).
//!
//! RSS feeds are one of Symphony's upload methods; each `<item>`
//! becomes a row with the standard columns.

use crate::error::StoreError;
use crate::formats::xml::{self, XmlElement};

/// A parsed feed.
#[derive(Debug, Clone, PartialEq)]
pub struct Feed {
    /// Channel title.
    pub title: String,
    /// Channel link.
    pub link: String,
    /// Channel description.
    pub description: String,
    /// Items in document order.
    pub items: Vec<FeedItem>,
}

/// One `<item>`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeedItem {
    /// Item title.
    pub title: String,
    /// Item link.
    pub link: String,
    /// Item description.
    pub description: String,
    /// Raw `pubDate` text (parsed downstream by value sniffing).
    pub pub_date: String,
    /// Stable id; falls back to the link.
    pub guid: String,
    /// First category, if any.
    pub category: String,
}

/// Parse RSS 2.0 text.
pub fn parse_feed(input: &str) -> Result<Feed, StoreError> {
    let root = xml::parse(input)?;
    if root.tag != "rss" {
        return Err(StoreError::Parse(format!(
            "rss: expected <rss> root, found <{}>",
            root.tag
        )));
    }
    let channel = root
        .child("channel")
        .ok_or_else(|| StoreError::Parse("rss: missing <channel>".into()))?;
    let items = channel
        .children_named("item")
        .map(|item| {
            let link = text(item, "link");
            FeedItem {
                title: text(item, "title"),
                guid: {
                    let g = text(item, "guid");
                    if g.is_empty() {
                        link.clone()
                    } else {
                        g
                    }
                },
                link,
                description: text(item, "description"),
                pub_date: text(item, "pubDate"),
                category: text(item, "category"),
            }
        })
        .collect();
    Ok(Feed {
        title: text(channel, "title"),
        link: text(channel, "link"),
        description: text(channel, "description"),
        items,
    })
}

fn text(el: &XmlElement, tag: &str) -> String {
    el.child_text(tag).unwrap_or_default().to_string()
}

/// The tabular projection of a feed: fixed columns, one row per item.
pub fn records(feed: &Feed) -> (Vec<String>, Vec<Vec<String>>) {
    let names = vec![
        "title".to_string(),
        "link".to_string(),
        "description".to_string(),
        "pubDate".to_string(),
        "guid".to_string(),
        "category".to_string(),
    ];
    let rows = feed
        .items
        .iter()
        .map(|i| {
            vec![
                i.title.clone(),
                i.link.clone(),
                i.description.clone(),
                i.pub_date.clone(),
                i.guid.clone(),
                i.category.clone(),
            ]
        })
        .collect();
    (names, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<rss version="2.0">
 <channel>
  <title>Game Reviews</title>
  <link>http://reviews.example.com</link>
  <description>Fresh reviews</description>
  <item>
   <title>Galactic Raiders review</title>
   <link>http://reviews.example.com/gr</link>
   <description>A great space shooter.</description>
   <pubDate>Tue, 03 Nov 2009 12:30:00 GMT</pubDate>
   <guid>gr-1</guid>
   <category>shooter</category>
  </item>
  <item>
   <title>Farm Story review</title>
   <link>http://reviews.example.com/fs</link>
  </item>
 </channel>
</rss>"#;

    #[test]
    fn parses_channel_and_items() {
        let feed = parse_feed(SAMPLE).unwrap();
        assert_eq!(feed.title, "Game Reviews");
        assert_eq!(feed.items.len(), 2);
        assert_eq!(feed.items[0].category, "shooter");
        assert_eq!(feed.items[0].guid, "gr-1");
    }

    #[test]
    fn guid_falls_back_to_link() {
        let feed = parse_feed(SAMPLE).unwrap();
        assert_eq!(feed.items[1].guid, "http://reviews.example.com/fs");
    }

    #[test]
    fn records_projection() {
        let feed = parse_feed(SAMPLE).unwrap();
        let (names, rows) = records(&feed);
        assert_eq!(names.len(), 6);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], "Galactic Raiders review");
        assert_eq!(rows[1][3], ""); // missing pubDate
    }

    #[test]
    fn non_rss_root_rejected() {
        assert!(matches!(
            parse_feed("<feed></feed>"),
            Err(StoreError::Parse(_))
        ));
        assert!(parse_feed("<rss version=\"2.0\"></rss>").is_err());
    }
}
