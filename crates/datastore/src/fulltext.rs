//! Full-text view over a table's text columns.
//!
//! The paper: "Symphony provides private and secure space to store
//! *and index* proprietary data". This module is the "index" half —
//! it mirrors chosen columns of a [`Table`](crate::table::Table) into a
//! `symphony-text` inverted index and maps hits back to record ids.

use crate::error::StoreError;
use crate::schema::Schema;
use crate::table::{Record, RecordId};
use symphony_text::query::Query;
use symphony_text::{
    Doc, DocId, DocSet, FieldId, Index, IndexConfig, MaintenanceReport, Searcher, SegmentPolicy,
};

/// A searchable projection of selected table columns.
pub struct FullTextView {
    index: Index,
    /// `(table column, text field)` pairs, in registration order.
    cols: Vec<(usize, FieldId)>,
    /// Doc id -> record id (dense, grows with adds).
    doc_to_record: Vec<RecordId>,
    /// Record id -> live doc id.
    record_to_doc: std::collections::HashMap<RecordId, DocId>,
}

impl std::fmt::Debug for FullTextView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FullTextView")
            .field("cols", &self.cols)
            .field("docs", &self.doc_to_record.len())
            .finish()
    }
}

/// One full-text hit mapped back to the table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextHit {
    /// Matching record.
    pub record: RecordId,
    /// BM25 score.
    pub score: f32,
}

impl FullTextView {
    /// Create a view over `searchable` columns, given as
    /// `(column name, boost)`. Field names in the text index equal the
    /// column names, so `Query::parse("title:x")` works.
    pub fn new(schema: &Schema, searchable: &[(&str, f32)]) -> Result<FullTextView, StoreError> {
        let mut index = Index::new(IndexConfig::default());
        let mut cols = Vec::with_capacity(searchable.len());
        for (name, boost) in searchable {
            let col = schema
                .col(name)
                .ok_or_else(|| StoreError::UnknownColumn(name.to_string()))?;
            let field = index.register_field(name, *boost);
            cols.push((col, field));
        }
        Ok(FullTextView {
            index,
            cols,
            doc_to_record: Vec::new(),
            record_to_doc: std::collections::HashMap::new(),
        })
    }

    /// Project a record's searchable columns into an index document.
    fn build_doc(&self, record: &Record) -> Doc {
        let mut doc = Doc::new();
        for &(col, field) in &self.cols {
            let text = record.get(col).index_text();
            if !text.is_empty() {
                doc = doc.field(field, text);
            }
        }
        doc
    }

    /// Index a record, or refresh it in place after an update: a known
    /// record goes through [`Index::update`] (tombstone + re-add under
    /// a fresh doc id), so re-crawls and edits never rebuild the view.
    pub fn add(&mut self, id: RecordId, record: &Record) {
        let doc = self.build_doc(record);
        let doc_id = match self.record_to_doc.get(&id) {
            Some(&old) => self
                .index
                .update(old, doc)
                .expect("record_to_doc only maps live doc ids"),
            None => self.index.add(doc),
        };
        debug_assert_eq!(doc_id.as_usize(), self.doc_to_record.len());
        self.doc_to_record.push(id);
        self.record_to_doc.insert(id, doc_id);
    }

    /// Bulk-index a batch of records using up to `threads` worker
    /// threads (`Index::build_parallel` under the hood — the result is
    /// bit-identical to calling [`add`](Self::add) per record in
    /// order). Used by table backfills, where the whole table arrives
    /// at once.
    pub fn add_bulk<'a, I>(&mut self, rows: I, threads: usize)
    where
        I: IntoIterator<Item = (RecordId, &'a Record)>,
    {
        let mut ids = Vec::new();
        let mut docs = Vec::new();
        for (id, record) in rows {
            if self.record_to_doc.contains_key(&id) {
                self.remove(id);
            }
            ids.push(id);
            docs.push(self.build_doc(record));
        }
        let doc_ids = self.index.build_parallel(docs, threads);
        for (id, doc_id) in ids.into_iter().zip(doc_ids) {
            debug_assert_eq!(doc_id.as_usize(), self.doc_to_record.len());
            self.doc_to_record.push(id);
            self.record_to_doc.insert(id, doc_id);
        }
    }

    /// Drop a record from the view (no-op when absent).
    pub fn remove(&mut self, id: RecordId) {
        if let Some(doc) = self.record_to_doc.remove(&id) {
            self.index.delete(doc);
        }
    }

    /// Fully compact the view: compress posting lists, purge removed
    /// records from them, and precompute the per-term score bounds that
    /// let [`search`](Self::search) prune non-competitive records.
    /// Call after bulk loading; results are identical either way.
    pub fn optimize(&mut self) {
        self.index.optimize();
    }

    /// One incremental maintenance step: seal the memtable segment when
    /// it is over the policy's size cap or staleness window, then run
    /// at most one background merge (which also purges removed
    /// records). Hosting drives this on the platform's virtual clock,
    /// so replay is deterministic.
    pub fn maintain(&mut self, now_ms: u64) -> MaintenanceReport {
        self.index.maintain(now_ms)
    }

    /// Replace the underlying index's segment policy.
    pub fn set_policy(&mut self, policy: SegmentPolicy) {
        self.index.set_policy(policy);
    }

    /// Execute a full-text query, returning the top `k` records.
    pub fn search(&self, query: &Query, k: usize) -> Vec<TextHit> {
        self.map_hits(Searcher::new(&self.index).search(query, k))
    }

    /// Top `k` under a caller predicate on record ids — the opaque
    /// post-check fallback path (every candidate is still scored).
    pub fn search_filtered<F: Fn(RecordId) -> bool>(
        &self,
        query: &Query,
        k: usize,
        accept: F,
    ) -> Vec<TextHit> {
        let hits = Searcher::new(&self.index)
            .search_filtered(query, k, |d| accept(self.doc_to_record[d.as_usize()]));
        self.map_hits(hits)
    }

    /// Top `k` restricted to a pre-resolved [`DocSet`] — the pushdown
    /// path, where the set rides the executor as a non-scoring
    /// conjunctive cursor and selective sets skip posting blocks
    /// decode-free.
    pub fn search_docset(&self, query: &Query, k: usize, allowed: &DocSet) -> Vec<TextHit> {
        self.map_hits(Searcher::new(&self.index).search_docset(query, k, allowed))
    }

    /// Top `k` scored exhaustively (no pruning) — the reference
    /// executor the scan plan and the differential tests use.
    pub fn search_exhaustive_filtered<F: Fn(RecordId) -> bool>(
        &self,
        query: &Query,
        k: usize,
        accept: F,
    ) -> Vec<TextHit> {
        let hits = Searcher::new(&self.index)
            .with_mode(symphony_text::ScoreMode::Exhaustive)
            .search_filtered(query, k, |d| accept(self.doc_to_record[d.as_usize()]));
        self.map_hits(hits)
    }

    /// Translate a set of record ids into the live [`DocSet`] the
    /// pushdown cursor consumes. Records unknown to the view (never
    /// indexed, or removed) are silently dropped.
    pub fn doc_set_for<I: IntoIterator<Item = RecordId>>(&self, records: I) -> DocSet {
        DocSet::from_unsorted(
            records
                .into_iter()
                .filter_map(|id| self.record_to_doc.get(&id).map(|d| d.0))
                .collect(),
        )
    }

    /// Number of live (searchable) records in the view.
    pub fn live_records(&self) -> usize {
        self.record_to_doc.len()
    }

    fn map_hits(&self, hits: Vec<symphony_text::SearchHit>) -> Vec<TextHit> {
        hits.into_iter()
            .map(|h| TextHit {
                record: self.doc_to_record[h.doc.as_usize()],
                score: h.score,
            })
            .collect()
    }

    /// The searchable `(column, field)` mapping.
    pub fn columns(&self) -> &[(usize, FieldId)] {
        &self.cols
    }

    /// Borrow the underlying text index (stats, analyzer access).
    pub fn index(&self) -> &Index {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldType;
    use crate::table::Table;
    use crate::value::Value;

    fn setup() -> (Table, FullTextView) {
        let schema = Schema::of(&[
            ("title", FieldType::Text),
            ("description", FieldType::Text),
            ("price", FieldType::Float),
        ]);
        let view = FullTextView::new(&schema, &[("title", 2.0), ("description", 1.0)]).unwrap();
        (Table::new("inv", schema), view)
    }

    fn add(t: &mut Table, v: &mut FullTextView, title: &str, desc: &str) -> RecordId {
        let id = t.insert(Record::new(vec![
            Value::Text(title.into()),
            Value::Text(desc.into()),
            Value::Float(10.0),
        ]));
        v.add(id, t.get(id).unwrap());
        id
    }

    #[test]
    fn search_maps_back_to_records() {
        let (mut t, mut v) = setup();
        let a = add(&mut t, &mut v, "Galactic Raiders", "space shooter");
        let _b = add(&mut t, &mut v, "Farm Story", "calm farming");
        let hits = v.search(&Query::parse("shooter"), 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].record, a);
        assert!(hits[0].score > 0.0);
    }

    #[test]
    fn unknown_column_errors() {
        let schema = Schema::of(&[("a", FieldType::Text)]);
        let err = FullTextView::new(&schema, &[("nope", 1.0)]).unwrap_err();
        assert_eq!(err, StoreError::UnknownColumn("nope".into()));
    }

    #[test]
    fn remove_hides_record() {
        let (mut t, mut v) = setup();
        let a = add(&mut t, &mut v, "Galactic Raiders", "space shooter");
        v.remove(a);
        assert!(v.search(&Query::parse("shooter"), 10).is_empty());
        v.remove(a); // idempotent
    }

    #[test]
    fn re_add_replaces_old_text() {
        let (mut t, mut v) = setup();
        let a = add(&mut t, &mut v, "Old Title", "old text");
        t.update(
            a,
            Record::new(vec![
                Value::Text("New Title".into()),
                Value::Text("new text".into()),
                Value::Float(1.0),
            ]),
        );
        v.add(a, t.get(a).unwrap());
        assert!(v.search(&Query::parse("old"), 10).is_empty());
        let hits = v.search(&Query::parse("new"), 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].record, a);
    }

    #[test]
    fn optimize_preserves_results_and_keeps_view_updatable() {
        let (mut t, mut v) = setup();
        let a = add(&mut t, &mut v, "Galactic Raiders", "space shooter game");
        let b = add(&mut t, &mut v, "Space Farm", "calm farming in space");
        add(&mut t, &mut v, "Puzzle Pack", "logic puzzles");
        let before = v.search(&Query::parse("space shooter"), 10);
        v.optimize();
        let after = v.search(&Query::parse("space shooter"), 10);
        assert_eq!(before, after);
        assert_eq!(after.len(), 2);
        // The view keeps accepting mutations after optimization.
        v.remove(b);
        let c = add(&mut t, &mut v, "Space Golf", "golf in space");
        let hits = v.search(&Query::parse("space"), 10);
        let records: Vec<RecordId> = hits.iter().map(|h| h.record).collect();
        assert!(records.contains(&a) && records.contains(&c));
        assert!(!records.contains(&b));
    }

    #[test]
    fn refresh_updates_in_place_without_rebuild() {
        let (mut t, mut v) = setup();
        let a = add(&mut t, &mut v, "Old Title", "old text");
        v.optimize();
        let sealed_before = v.index().stats().sealed_segments;
        t.update(
            a,
            Record::new(vec![
                Value::Text("New Title".into()),
                Value::Text("new text".into()),
                Value::Float(1.0),
            ]),
        );
        v.add(a, t.get(a).unwrap());
        // The refresh tombstoned the old doc and re-added into the
        // memtable; the sealed segment was not rebuilt.
        assert_eq!(v.index().stats().sealed_segments, sealed_before);
        assert_eq!(v.index().stats().memtable_docs, 1);
        assert!(v.search(&Query::parse("old"), 10).is_empty());
        assert_eq!(v.search(&Query::parse("new"), 10)[0].record, a);
    }

    #[test]
    fn maintain_seals_and_purges_removed_records() {
        let (mut t, mut v) = setup();
        v.set_policy(symphony_text::SegmentPolicy {
            memtable_max_docs: 2,
            staleness_window_ms: 100,
            merge_fanin: 4,
            near_real_time: false,
        });
        let a = add(&mut t, &mut v, "Galactic Raiders", "space shooter");
        let b = add(&mut t, &mut v, "Space Farm", "calm space farming");
        let r = v.maintain(10);
        assert!(r.sealed, "size cap reached");
        v.remove(a);
        v.remove(b);
        let c = add(&mut t, &mut v, "Space Golf", "golf in space");
        // Time passes: one tick seals the memtable (staleness window)
        // and rewrites the now majority-dead first segment, physically
        // purging both removed records.
        let r = v.maintain(200);
        assert!(r.sealed);
        assert_eq!(r.merged_segments, 1);
        assert_eq!(r.purged_docs, 2);
        let hits = v.search(&Query::parse("space"), 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].record, c);
    }

    #[test]
    fn field_restricted_query_uses_column_names() {
        let (mut t, mut v) = setup();
        add(&mut t, &mut v, "space opera", "a story");
        add(&mut t, &mut v, "farm tale", "set in space");
        let hits = v.search(&Query::parse("title:space"), 10);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn non_text_columns_index_their_display_form() {
        let schema = Schema::of(&[("name", FieldType::Text), ("year", FieldType::Int)]);
        let mut table = Table::new("t", schema.clone());
        let mut view = FullTextView::new(&schema, &[("name", 1.0), ("year", 1.0)]).unwrap();
        let id = table.insert(Record::new(vec![
            Value::Text("Classic".into()),
            Value::Int(2009),
        ]));
        view.add(id, table.get(id).unwrap());
        assert_eq!(view.search(&Query::parse("2009"), 10).len(), 1);
    }
}
