//! Structured filters over records.
//!
//! The paper's future work mentions "richer querying of structured
//! data"; this module provides the comparison/boolean algebra the
//! platform uses for field bindings and for the planner in
//! [`indexed`](crate::indexed).

use crate::table::Record;
use crate::value::Value;
use std::cmp::Ordering;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// A boolean filter expression over one record.
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches everything.
    True,
    /// Compare a column to a literal.
    Cmp {
        /// Column index.
        col: usize,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// Case-insensitive substring match on the column's display text.
    Contains {
        /// Column index.
        col: usize,
        /// Needle (matched case-insensitively).
        needle: String,
    },
    /// Column is null.
    IsNull {
        /// Column index.
        col: usize,
    },
    /// Both sides must hold.
    And(Box<Filter>, Box<Filter>),
    /// Either side must hold.
    Or(Box<Filter>, Box<Filter>),
    /// Negation.
    Not(Box<Filter>),
}

impl Filter {
    /// Convenience equality filter.
    pub fn eq(col: usize, value: Value) -> Filter {
        Filter::Cmp {
            col,
            op: CmpOp::Eq,
            value,
        }
    }

    /// Convenience comparison filter.
    pub fn cmp(col: usize, op: CmpOp, value: Value) -> Filter {
        Filter::Cmp { col, op, value }
    }

    /// Convenience conjunction.
    pub fn and(self, other: Filter) -> Filter {
        Filter::And(Box::new(self), Box::new(other))
    }

    /// Convenience disjunction.
    pub fn or(self, other: Filter) -> Filter {
        Filter::Or(Box::new(self), Box::new(other))
    }

    /// Convenience negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Filter {
        Filter::Not(Box::new(self))
    }

    /// Evaluate against a record.
    ///
    /// Comparisons against nulls are false (three-valued logic
    /// collapsed to two, like most practical engines' WHERE).
    pub fn eval(&self, record: &Record) -> bool {
        match self {
            Filter::True => true,
            Filter::Cmp { col, op, value } => {
                let cell = record.get(*col);
                if cell.is_null() || value.is_null() {
                    return false;
                }
                op.test(cell.cmp_total(value))
            }
            Filter::Contains { col, needle } => {
                let hay = record.get(*col).display_string().to_lowercase();
                hay.contains(&needle.to_lowercase())
            }
            Filter::IsNull { col } => record.get(*col).is_null(),
            Filter::And(a, b) => a.eval(record) && b.eval(record),
            Filter::Or(a, b) => a.eval(record) || b.eval(record),
            Filter::Not(f) => !f.eval(record),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Record {
        Record::new(vec![
            Value::Text("Galactic Raiders".into()),
            Value::Float(49.99),
            Value::Int(12),
            Value::Null,
        ])
    }

    #[test]
    fn cmp_ops() {
        let r = rec();
        assert!(Filter::cmp(2, CmpOp::Eq, Value::Int(12)).eval(&r));
        assert!(Filter::cmp(2, CmpOp::Ne, Value::Int(13)).eval(&r));
        assert!(Filter::cmp(1, CmpOp::Lt, Value::Float(50.0)).eval(&r));
        assert!(Filter::cmp(1, CmpOp::Le, Value::Float(49.99)).eval(&r));
        assert!(Filter::cmp(1, CmpOp::Gt, Value::Int(49)).eval(&r));
        assert!(Filter::cmp(1, CmpOp::Ge, Value::Float(49.99)).eval(&r));
        assert!(!Filter::cmp(1, CmpOp::Gt, Value::Int(50)).eval(&r));
    }

    #[test]
    fn null_comparisons_are_false() {
        let r = rec();
        assert!(!Filter::eq(3, Value::Int(0)).eval(&r));
        assert!(!Filter::cmp(3, CmpOp::Ne, Value::Int(0)).eval(&r));
        assert!(!Filter::eq(0, Value::Null).eval(&r));
        assert!(Filter::IsNull { col: 3 }.eval(&r));
        assert!(!Filter::IsNull { col: 0 }.eval(&r));
    }

    #[test]
    fn contains_is_case_insensitive() {
        let r = rec();
        assert!(Filter::Contains {
            col: 0,
            needle: "galactic".into()
        }
        .eval(&r));
        assert!(!Filter::Contains {
            col: 0,
            needle: "puzzle".into()
        }
        .eval(&r));
    }

    #[test]
    fn boolean_combinators() {
        let r = rec();
        let a = Filter::eq(2, Value::Int(12));
        let b = Filter::eq(2, Value::Int(99));
        assert!(a.clone().and(Filter::True).eval(&r));
        assert!(!a.clone().and(b.clone()).eval(&r));
        assert!(a.clone().or(b.clone()).eval(&r));
        assert!(b.clone().not().eval(&r));
        assert!(!a.not().eval(&r));
    }

    #[test]
    fn numeric_cross_type_compare() {
        let r = rec();
        assert!(Filter::eq(2, Value::Float(12.0)).eval(&r));
    }
}
