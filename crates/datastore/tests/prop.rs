//! Property-based tests for the store substrate.

use proptest::prelude::*;
use symphony_store::filter::{CmpOp, Filter};
use symphony_store::formats::csv::{parse_delimited, to_csv};
use symphony_store::formats::json;
use symphony_store::formats::xml;
use symphony_store::indexed::{IndexedTable, TableQuery};
use symphony_store::schema::{FieldType, Schema};
use symphony_store::table::{Record, Table};
use symphony_store::value::Value;
use symphony_store::IndexKind;

/// Cells without exotic control characters (CSV spec allows them, but
/// the writer only guarantees the printable + quoted subset).
fn cell() -> impl Strategy<Value = String> {
    "[ -~]{0,12}"
}

proptest! {
    /// CSV write -> parse is the identity on rows.
    #[test]
    fn csv_roundtrip(
        names in proptest::collection::vec("[a-z]{1,8}", 1..5),
        rows in proptest::collection::vec(proptest::collection::vec(cell(), 1..5), 0..10),
    ) {
        // Make names unique and rows rectangular to match writer
        // expectations.
        let names: Vec<String> = names
            .into_iter()
            .enumerate()
            .map(|(i, n)| format!("{n}{i}"))
            .collect();
        let width = names.len();
        let rows: Vec<Vec<String>> = rows
            .into_iter()
            .map(|mut r| {
                r.resize(width, String::new());
                r
            })
            // A row of all-empty cells round-trips to a skipped blank
            // line; exclude it (documented writer behaviour).
            .filter(|r| r.iter().any(|c| !c.is_empty()))
            .collect();
        let text = to_csv(&names, &rows);
        let parsed = parse_delimited(&text, ',').unwrap();
        prop_assert_eq!(parsed.names, names);
        prop_assert_eq!(parsed.rows, rows);
    }

    /// JSON serialize -> parse is the identity.
    #[test]
    fn json_roundtrip(v in json_value(3)) {
        let text = json::to_string(&v);
        let back = json::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// XML escape -> unescape is the identity.
    #[test]
    fn xml_escape_roundtrip(s in "\\PC{0,40}") {
        prop_assert_eq!(xml::unescape(&xml::escape(&s)), s);
    }

    /// Value sniffing never panics and display text reparses to an
    /// equal value for non-text types.
    #[test]
    fn value_sniff_display_stable(s in "\\PC{0,30}") {
        let v = Value::sniff(&s);
        let again = Value::sniff(&v.display_string());
        match &v {
            Value::Text(_) | Value::Null => {}
            _ => prop_assert_eq!(
                v.cmp_total(&again),
                std::cmp::Ordering::Equal,
                "{:?} vs {:?}", v, again
            ),
        }
    }

    /// An indexed equality query returns exactly what a full scan
    /// returns, for any data distribution.
    #[test]
    fn index_matches_scan(
        keys in proptest::collection::vec(0i64..5, 1..40),
        probe in 0i64..5,
    ) {
        let schema = Schema::of(&[("k", FieldType::Int)]);
        let mut hash = IndexedTable::new(Table::new("t", schema.clone()));
        let mut plain = IndexedTable::new(Table::new("t", schema));
        hash.create_index("k", IndexKind::Hash).unwrap();
        for k in &keys {
            hash.insert(Record::new(vec![Value::Int(*k)]));
            plain.insert(Record::new(vec![Value::Int(*k)]));
        }
        let q = TableQuery::filtered(Filter::eq(0, Value::Int(probe)));
        let a: Vec<_> = hash.query(&q).iter().map(|(id, _)| *id).collect();
        let b: Vec<_> = plain.query(&q).iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(a, b);
    }

    /// Range queries on an ordered index agree with scans too.
    #[test]
    fn range_index_matches_scan(
        keys in proptest::collection::vec(-20i64..20, 1..40),
        lo in -20i64..20,
        span in 0i64..15,
    ) {
        let schema = Schema::of(&[("k", FieldType::Int)]);
        let mut ordered = IndexedTable::new(Table::new("t", schema.clone()));
        let mut plain = IndexedTable::new(Table::new("t", schema));
        ordered.create_index("k", IndexKind::Ordered).unwrap();
        for k in &keys {
            ordered.insert(Record::new(vec![Value::Int(*k)]));
            plain.insert(Record::new(vec![Value::Int(*k)]));
        }
        let f = Filter::cmp(0, CmpOp::Ge, Value::Int(lo))
            .and(Filter::cmp(0, CmpOp::Lt, Value::Int(lo + span)));
        let q = TableQuery::filtered(f);
        let a: Vec<_> = ordered.query(&q).iter().map(|(id, _)| *id).collect();
        let b: Vec<_> = plain.query(&q).iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(a, b);
    }

    /// Plan invariance of the hybrid engine: filter-first (doc-set
    /// pushdown), search-first (over-fetch + post-filter refill), and
    /// scan (exhaustive closure) return bit-identical `(record, score)`
    /// lists over random corpora, filters, selectivities, and k — and
    /// the planner's own unforced choice matches too. Also pins the
    /// fused plan+execute path: filters whose shape defeats the planner
    /// (Or/Not around the indexed column) must degrade to a scan, never
    /// panic.
    #[test]
    fn hybrid_plan_invariance(
        rows in proptest::collection::vec(
            ("[ab]{2,3}( [ab]{2,3}){0,5}", 0i64..40, any::<bool>()),
            1..60,
        ),
        needle in proptest::collection::vec("[ab]{2,3}", 1..3),
        lo in 0i64..40,
        span in 0i64..40,
        wrap in 0u8..3,
        k in 1usize..8,
    ) {
        use symphony_store::hybrid::{HybridPlan, HybridQuery};

        let schema = Schema::of(&[
            ("body", FieldType::Text),
            ("price", FieldType::Int),
            ("in_stock", FieldType::Bool),
        ]);
        let mut it = IndexedTable::new(Table::new("t", schema));
        it.create_index("price", IndexKind::Ordered).unwrap();
        it.create_index("in_stock", IndexKind::Hash).unwrap();
        for (body, price, in_stock) in &rows {
            it.insert(Record::new(vec![
                Value::Text(body.clone()),
                Value::Int(*price),
                Value::Bool(*in_stock),
            ]));
        }
        it.enable_fulltext(&[("body", 1.0)]).unwrap();
        it.optimize_fulltext();

        let base = Filter::cmp(1, CmpOp::Ge, Value::Int(lo))
            .and(Filter::cmp(1, CmpOp::Lt, Value::Int(lo + span)));
        let filter = match wrap {
            // Planner-friendly conjunction.
            0 => base,
            // Disjunction: no usable conjunct — must degrade, not panic.
            1 => base.or(Filter::eq(2, Value::Bool(true))),
            // Negation wrapper: same.
            _ => base.not(),
        };
        let q = HybridQuery::new(
            symphony_text::Query::parse(&needle.join(" ")),
            filter,
            k,
        );
        let key = |r: &symphony_store::HybridResult| {
            r.hits.iter().map(|h| (h.record, h.score.to_bits())).collect::<Vec<_>>()
        };
        let ff = it.hybrid_query_planned(&q, Some(HybridPlan::FilterFirst)).unwrap();
        let sf = it.hybrid_query_planned(&q, Some(HybridPlan::SearchFirst)).unwrap();
        let sc = it.hybrid_query_planned(&q, Some(HybridPlan::Scan)).unwrap();
        let planned = it.hybrid_query(&q).unwrap();
        prop_assert_eq!(key(&ff), key(&sc));
        prop_assert_eq!(key(&sf), key(&sc));
        prop_assert_eq!(key(&planned), key(&sc));
    }
}

proptest! {
    /// Civil-date <-> epoch-day conversion is a bijection over a wide
    /// range (covers leap years and centuries).
    #[test]
    fn civil_days_bijection(days in -200_000i64..200_000) {
        use symphony_store::datetime::{civil_from_days, days_from_civil};
        let (y, m, d) = civil_from_days(days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
        prop_assert_eq!(days_from_civil(y, m, d), days);
    }

    /// Datetime parse -> format -> parse is stable.
    #[test]
    fn datetime_format_fixpoint(epoch in -4_000_000_000i64..4_000_000_000) {
        use symphony_store::datetime::{format_epoch, parse_datetime};
        let text = format_epoch(epoch);
        prop_assert_eq!(parse_datetime(&text), Some(epoch));
    }
}

/// Strategy for arbitrary JSON values of bounded depth.
fn json_value(depth: u32) -> BoxedStrategy<json::JsonValue> {
    let leaf = prop_oneof![
        Just(json::JsonValue::Null),
        any::<bool>().prop_map(json::JsonValue::Bool),
        // Integral magnitudes that survive the writer's i64 fast path.
        (-1_000_000i64..1_000_000).prop_map(|i| json::JsonValue::Num(i as f64)),
        "[ -~]{0,10}".prop_map(json::JsonValue::Str),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(json::JsonValue::Arr),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4).prop_map(|pairs| {
                // Deduplicate keys (objects with duplicate keys do not
                // round-trip structurally).
                let mut seen = std::collections::HashSet::new();
                json::JsonValue::Obj(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
    .boxed()
}
