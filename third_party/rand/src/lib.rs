//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no registry access, so the workspace
//! vendors the small slice of `rand` it actually uses: a seedable
//! deterministic generator (`rngs::StdRng`, here xoshiro256++ seeded
//! via SplitMix64) and the `Rng` convenience methods `gen`,
//! `gen_range`, and `gen_bool`. Determinism per seed is part of the
//! contract — the simulated web corpus, query logs, and transport
//! latency models all rely on it.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a range (`gen_range`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draw from `[low, high)` (or `[low, high]` when `inclusive`).
    fn sample_in<R: RngCore + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Sample a value of `T` uniformly from a range form `Self`.
///
/// The single blanket impl per range shape (mirroring upstream rand)
/// lets integer-literal ranges unify with the destination type, e.g.
/// `let x: i64 = rng.gen_range(5..120);`.
pub trait SampleRange<T> {
    /// Draw one sample using the given bit source.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range in gen_range");
        T::sample_in(start, end, true, rng)
    }
}

/// Types with a "standard" uniform distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one sample using the given bit source.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                low: $t,
                high: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span =
                    (high as i128 - low as i128) as u128 + if inclusive { 1 } else { 0 };
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(low: f64, high: f64, _inclusive: bool, rng: &mut R) -> f64 {
        low + f64::sample_standard(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(low: f32, high: f32, _inclusive: bool, rng: &mut R) -> f32 {
        low + f64::sample_standard(rng) as f32 * (high - low)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        f64::sample_standard(rng) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Not the upstream `StdRng` algorithm, but satisfies the same
    /// contract the workspace relies on: high-quality uniform output,
    /// identical streams for identical seeds, distinct streams for
    /// distinct seeds.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.gen_range(0u32..1000)).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!((0..10).contains(&r.gen_range(0i32..10)));
            assert!((5..=9u32).contains(&r.gen_range(5u32..=9)));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_600..=3_400).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn negative_ranges() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let v = r.gen_range(-20i64..20);
            assert!((-20..20).contains(&v));
        }
    }
}
