//! Offline drop-in subset of the `parking_lot` API.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, matching
//! `parking_lot`'s guard-returning (non-`Result`) interface. A thread
//! that panicked while holding a lock leaves the protected data in a
//! consistent-enough state for this workspace: every critical section
//! here is a handful of statements with no unwind points between
//! related writes.

use std::fmt;
use std::sync::PoisonError;

/// Mutual exclusion lock returning guards directly.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Reader-writer lock returning guards directly.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 2);
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock still usable after holder panic");
    }
}
