//! Minimal offline drop-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API this workspace's
//! benches use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Throughput`], [`BatchSize`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a
//! simple wall-clock loop: each benchmark is warmed up briefly, then
//! run for a fixed number of iterations and reported as mean
//! time-per-iteration (plus throughput when configured).
//!
//! The `CRITERION_SAMPLE_SIZE` environment variable, when set to a
//! positive integer, caps every benchmark's iteration count regardless
//! of what the bench code configures. CI uses `CRITERION_SAMPLE_SIZE=1`
//! to smoke-run all benches in one iteration each, so bench code cannot
//! bit-rot without failing the build.

use std::fmt;
use std::time::{Duration, Instant};

/// Iteration count after applying the `CRITERION_SAMPLE_SIZE` cap.
fn capped_iters(configured: usize) -> u64 {
    let cap = std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    cap.map_or(configured, |c| configured.min(c)) as u64
}

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. Accepted for API
/// compatibility; the stub always runs setup per batch element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; drives the timed loop.
pub struct Bencher {
    /// Total measured time across all iterations.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Target iteration count chosen by the harness.
    target_iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.target_iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.target_iters;
    }

    /// Time `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.target_iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += self.target_iters;
    }
}

fn report(name: &str, elapsed: Duration, iters: u64, throughput: Option<Throughput>) {
    if iters == 0 {
        println!("{name:<48} (no iterations)");
        return;
    }
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let time_str = if per_iter >= 1e-3 {
        format!("{:>10.3} ms", per_iter * 1e3)
    } else {
        format!("{:>10.3} us", per_iter * 1e6)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("{name:<48} {time_str}/iter{rate}  ({iters} iters)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; scales the iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Report throughput alongside time-per-iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            target_iters: capped_iters(self.sample_size),
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.elapsed,
            b.iters,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            target_iters: capped_iters(self.default_sample_size),
        };
        f(&mut b);
        report(&id.to_string(), b.elapsed, b.iters, None);
        self
    }

    /// Accepted for API compatibility with `criterion_group!` configs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&mut self) {}
}

/// Define a benchmark group: a function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_accumulates() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            target_iters: 5,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(b.iters, 5);
        assert_eq!(count, 6); // warm-up + 5 timed
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            target_iters: 4,
        };
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |x| x * 2,
            BatchSize::LargeInput,
        );
        assert_eq!(b.iters, 4);
        assert_eq!(setups, 5); // warm-up + 4 timed
    }

    #[test]
    fn sample_size_env_caps_iterations() {
        // No var (or garbage) leaves the configured count alone.
        std::env::remove_var("CRITERION_SAMPLE_SIZE");
        assert_eq!(capped_iters(20), 20);
        std::env::set_var("CRITERION_SAMPLE_SIZE", "not a number");
        assert_eq!(capped_iters(20), 20);
        std::env::set_var("CRITERION_SAMPLE_SIZE", "0");
        assert_eq!(capped_iters(20), 20);
        // A positive cap clamps down, never up.
        std::env::set_var("CRITERION_SAMPLE_SIZE", "1");
        assert_eq!(capped_iters(20), 1);
        assert_eq!(capped_iters(0), 0);
        std::env::set_var("CRITERION_SAMPLE_SIZE", "50");
        assert_eq!(capped_iters(20), 20);
        std::env::remove_var("CRITERION_SAMPLE_SIZE");
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter(1), &1u32, |b, &n| {
            b.iter(|| n + 1)
        });
        g.finish();
    }
}
