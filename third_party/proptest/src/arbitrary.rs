//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "generate any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Canonical strategy for `A` (`any::<A>()`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug)]
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.gen::<usize>())
    }
}
