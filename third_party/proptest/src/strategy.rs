//! The [`Strategy`] trait and core combinators.

use crate::string::generate_matching;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case, and
    /// `recurse` wraps an inner strategy into a deeper one, applied
    /// up to `depth` times. The `_desired_size` and `_expected_branch`
    /// hints are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat.clone()).boxed();
        }
        strat
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
pub struct OneOf<T>(Vec<BoxedStrategy<T>>);

impl<T> OneOf<T> {
    /// Choice over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf(arms)
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf(self.0.clone())
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// String literals are regex strategies, as in proptest.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::seeded_rng;

    #[test]
    fn ranges_tuples_and_map() {
        let mut rng = seeded_rng("ranges_tuples_and_map");
        let s = (1u32..5, 0.0f64..1.0).prop_map(|(a, b)| a as f64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1.0..5.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = seeded_rng("oneof_hits_every_arm");
        let s = OneOf::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        let mut rng = seeded_rng("recursive_bottoms_out");
        let s = Just(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        for _ in 0..50 {
            let _ = s.generate(&mut rng); // must terminate
        }
    }
}
