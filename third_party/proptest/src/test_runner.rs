//! Test configuration and deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator driving input generation.
pub type TestRng = StdRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG derived from the test function's name, so every
/// run (and every failure) reproduces the same case sequence.
pub fn seeded_rng(test_name: &str) -> TestRng {
    // FNV-1a over the name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}
