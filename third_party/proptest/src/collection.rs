//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>` with approximately `size` entries
/// (duplicate generated keys collapse, as in proptest).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

/// Strategy for `BTreeSet<T>` with approximately `size` elements
/// (duplicates collapse, as in proptest).
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::seeded_rng;

    #[test]
    fn sizes_respect_range() {
        let mut rng = seeded_rng("sizes_respect_range");
        let s = vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 10));
        }
    }

    #[test]
    fn maps_and_sets_generate() {
        let mut rng = seeded_rng("maps_and_sets_generate");
        let m = btree_map(0u32..100, 0u8..3, 0..10).generate(&mut rng);
        assert!(m.len() < 10);
        let s = btree_set(0u32..100, 1..10).generate(&mut rng);
        assert!(!s.is_empty() && s.len() < 10);
    }
}
