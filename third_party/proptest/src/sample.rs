//! Sampling helpers (`prop::sample::Index`).

/// An index into a collection of unknown (at generation time) length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Build from a raw generated value.
    pub fn new(raw: usize) -> Index {
        Index(raw)
    }

    /// Resolve against a collection of `len` elements.
    ///
    /// # Panics
    /// Panics when `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.0 % len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_stays_in_bounds() {
        let i = Index::new(usize::MAX - 3);
        for len in 1..50 {
            assert!(i.index(len) < len);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_collection_panics() {
        Index::new(7).index(0);
    }
}
