//! Regex-shaped string generation.
//!
//! Proptest treats string literals as regexes and generates matching
//! strings. This module implements the subset of that grammar the
//! workspace's tests use: literals, character classes (`[a-z]`,
//! `[ -~]`), groups with alternation (`(ab|cd)`), the `\PC`
//! printable-character class, and the quantifiers `?`, `*`, `+`,
//! `{n}`, `{m,n}`.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Node {
    /// A literal character.
    Lit(char),
    /// A character class as inclusive ranges.
    Class(Vec<(char, char)>),
    /// A group of alternative sequences (`(a|b)`); one is chosen.
    Group(Vec<Vec<(Node, Quant)>>),
}

#[derive(Debug, Clone, Copy)]
struct Quant {
    min: u32,
    max: u32,
}

const ONCE: Quant = Quant { min: 1, max: 1 };

/// Printable characters for `\PC`: the full ASCII printable range
/// plus a handful of Latin-1 letters so non-ASCII text is exercised.
const PRINTABLE: &[(char, char)] = &[(' ', '~'), (' ', '~'), (' ', '~'), ('À', 'ö')];

/// Generate a string matching `pattern`.
///
/// # Panics
/// Panics on syntax this subset does not understand, so an
/// unsupported test pattern fails loudly rather than silently
/// generating garbage.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut chars: Vec<char> = pattern.chars().collect();
    chars.reverse(); // pop() from the front
    let seq = parse_sequence(&mut chars, false);
    assert!(
        chars.is_empty(),
        "unbalanced pattern {pattern:?} (stopped before {:?})",
        chars.iter().rev().collect::<String>()
    );
    let mut out = String::new();
    emit_sequence(&seq, rng, &mut out);
    out
}

/// Parse until end of input or an unconsumed `)` (when `in_group`).
fn parse_sequence(chars: &mut Vec<char>, in_group: bool) -> Vec<Vec<(Node, Quant)>> {
    let mut alternatives: Vec<Vec<(Node, Quant)>> = vec![Vec::new()];
    while let Some(&c) = chars.last() {
        match c {
            ')' if in_group => break,
            ')' => panic!("unmatched ')' in pattern"),
            '|' => {
                chars.pop();
                alternatives.push(Vec::new());
                continue;
            }
            _ => {}
        }
        let node = parse_atom(chars);
        let quant = parse_quant(chars);
        alternatives
            .last_mut()
            .expect("non-empty")
            .push((node, quant));
    }
    alternatives
}

fn parse_atom(chars: &mut Vec<char>) -> Node {
    let c = chars.pop().expect("atom expected");
    match c {
        '[' => Node::Class(parse_class(chars)),
        '(' => {
            let alts = parse_sequence(chars, true);
            assert_eq!(chars.pop(), Some(')'), "unterminated group");
            Node::Group(alts)
        }
        '\\' => match chars.pop().expect("escape expected") {
            'P' => {
                // Only the \PC ("not a control character") form is
                // supported.
                assert_eq!(chars.pop(), Some('C'), "only \\PC is supported");
                Node::Class(PRINTABLE.to_vec())
            }
            'd' => Node::Class(vec![('0', '9')]),
            'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            's' => Node::Lit(' '),
            other => Node::Lit(other),
        },
        '.' => Node::Class(PRINTABLE.to_vec()),
        other => Node::Lit(other),
    }
}

fn parse_class(chars: &mut Vec<char>) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = chars.pop().expect("unterminated character class");
        match c {
            ']' => break,
            '\\' => {
                let e = chars.pop().expect("escape in class");
                ranges.push((e, e));
            }
            _ => {
                // `c-d` range, unless `-` is the final literal.
                if chars.last() == Some(&'-')
                    && chars.get(chars.len().wrapping_sub(2)) != Some(&']')
                {
                    chars.pop(); // '-'
                    let end = chars.pop().expect("range end");
                    assert!(c <= end, "inverted class range {c}-{end}");
                    ranges.push((c, end));
                } else {
                    ranges.push((c, c));
                }
            }
        }
    }
    assert!(!ranges.is_empty(), "empty character class");
    ranges
}

fn parse_quant(chars: &mut Vec<char>) -> Quant {
    match chars.last() {
        Some('?') => {
            chars.pop();
            Quant { min: 0, max: 1 }
        }
        Some('*') => {
            chars.pop();
            Quant { min: 0, max: 8 }
        }
        Some('+') => {
            chars.pop();
            Quant { min: 1, max: 8 }
        }
        Some('{') => {
            chars.pop();
            let mut digits = String::new();
            let mut min: Option<u32> = None;
            loop {
                let c = chars.pop().expect("unterminated quantifier");
                match c {
                    '}' => {
                        let n: u32 = digits.parse().expect("quantifier bound");
                        return match min {
                            Some(m) => Quant { min: m, max: n },
                            None => Quant { min: n, max: n },
                        };
                    }
                    ',' => {
                        min = Some(digits.parse().expect("quantifier bound"));
                        digits.clear();
                    }
                    d => digits.push(d),
                }
            }
        }
        _ => ONCE,
    }
}

fn emit_sequence(alternatives: &[Vec<(Node, Quant)>], rng: &mut TestRng, out: &mut String) {
    let alt = &alternatives[rng.gen_range(0..alternatives.len())];
    for (node, quant) in alt {
        let n = rng.gen_range(quant.min..=quant.max);
        for _ in 0..n {
            emit_node(node, rng, out);
        }
    }
}

fn emit_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
            let span = hi as u32 - lo as u32 + 1;
            let c = char::from_u32(lo as u32 + rng.gen_range(0..span)).unwrap_or(lo);
            out.push(c);
        }
        Node::Group(alts) => emit_sequence(alts, rng, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::seeded_rng;

    fn gen_many(pattern: &str) -> Vec<String> {
        let mut rng = seeded_rng(pattern);
        (0..100)
            .map(|_| generate_matching(pattern, &mut rng))
            .collect()
    }

    #[test]
    fn class_with_counted_repeat() {
        for s in gen_many("[a-z]{2,8}") {
            assert!((2..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn grouped_words_pattern() {
        for s in gen_many("[a-z]{1,4}( [a-z]{1,4}){0,2}") {
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=3).contains(&words.len()), "{s:?}");
            for w in words {
                assert!((1..=4).contains(&w.len()), "{s:?}");
            }
        }
    }

    #[test]
    fn printable_ascii_class() {
        for s in gen_many("[ -~]{0,12}") {
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn pc_escape_avoids_controls() {
        for s in gen_many("\\PC{0,30}") {
            assert!(s.chars().count() <= 30);
            assert!(!s.chars().any(char::is_control), "{s:?}");
        }
    }

    #[test]
    fn optional_group() {
        let all = gen_many("[a-z]{3,7}( [a-z]{3,7})?");
        assert!(all.iter().any(|s| s.contains(' ')));
        assert!(all.iter().any(|s| !s.contains(' ')));
    }

    #[test]
    fn alternation_in_group() {
        for s in gen_many("(ab|cd)x") {
            assert!(s == "abx" || s == "cdx", "{s:?}");
        }
    }

    #[test]
    fn exact_count() {
        for s in gen_many("[0-9]{4}") {
            assert_eq!(s.len(), 4);
        }
    }
}
