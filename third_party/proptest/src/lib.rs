//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro,
//! range/regex/tuple strategies, `collection::{vec, btree_map,
//! btree_set}`, `prop_oneof!`, `prop_recursive`, [`arbitrary::any`],
//! and `sample::Index`. Cases are generated deterministically from a
//! per-test seed so failures reproduce; there is **no shrinking** —
//! the failing case's inputs print via the assertion message instead.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define deterministic property tests.
///
/// Mirrors proptest's surface syntax: an optional
/// `#![proptest_config(...)]` inner attribute, then `#[test]`
/// functions whose arguments bind `name in strategy` pairs. Each
/// function runs `cases` times with independently generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::seeded_rng(stringify!($name));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Assert within a property test (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
